"""Property-based tests over the optimizers (hypothesis).

The central property: DPsize, DPsub and DPccp all return a valid,
cross-product-free plan with exactly the exhaustive-optimal cost, for
arbitrary connected graphs, catalogs and selectivities.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, DPsize, DPsub, ExhaustiveOptimizer
from repro.cost.cout import CoutModel
from repro.cost.disk import DiskCostModel
from repro.graph.generators import random_connected_graph
from repro.plans.metrics import join_count
from repro.plans.visitors import iter_leaves, validate_plan


@st.composite
def instances(draw, max_n: int = 7):
    """(graph, catalog) pairs with random shape, stats and selectivities."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=2, max_value=max_n))
    extra = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = random.Random(seed)
    graph = random_connected_graph(n, rng, extra)
    catalog = random_catalog(n, rng)
    return graph, catalog


class TestOptimality:
    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_all_algorithms_reach_the_optimum_cout(self, instance):
        graph, catalog = instance
        reference = ExhaustiveOptimizer().optimize(
            graph, cost_model=CoutModel(graph, catalog)
        )
        for algorithm in (DPsize(), DPsub(), DPccp()):
            result = algorithm.optimize(
                graph, cost_model=CoutModel(graph, catalog)
            )
            assert result.cost == pytest.approx(reference.cost), algorithm.name

    @given(instances(max_n=6))
    @settings(max_examples=25, deadline=None)
    def test_all_algorithms_reach_the_optimum_disk(self, instance):
        graph, catalog = instance
        reference = ExhaustiveOptimizer().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        for algorithm in (DPsize(), DPsub(), DPccp()):
            result = algorithm.optimize(
                graph, cost_model=DiskCostModel(graph, catalog)
            )
            assert result.cost == pytest.approx(reference.cost), algorithm.name


class TestPlanInvariants:
    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_plans_are_structurally_sound(self, instance):
        graph, catalog = instance
        for algorithm in (DPsize(), DPsub(), DPccp()):
            plan = algorithm.optimize(graph, catalog=catalog).plan
            validate_plan(plan, graph)
            assert join_count(plan) == graph.n_relations - 1
            leaves = [leaf.relation_index for leaf in iter_leaves(plan)]
            assert sorted(leaves) == list(range(graph.n_relations))

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_output_cardinality_is_order_independent(self, instance):
        """All algorithms agree on the root cardinality (estimator law)."""
        graph, catalog = instance
        model = CoutModel(graph, catalog)
        expected = model.estimator.set_cardinality(graph.all_relations)
        for algorithm in (DPsize(), DPsub(), DPccp()):
            plan = algorithm.optimize(
                graph, cost_model=CoutModel(graph, catalog)
            ).plan
            assert plan.cardinality == pytest.approx(expected, rel=1e-9)


class TestCounterInvariants:
    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_csg_cmp_counter_identical_across_algorithms(self, instance):
        graph, _catalog = instance
        values = {
            algorithm.name: algorithm.optimize(
                graph
            ).counters.csg_cmp_pair_counter
            for algorithm in (DPsize(), DPsub(), DPccp())
        }
        assert len(set(values.values())) == 1, values

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_dpccp_meets_lower_bound(self, instance):
        graph, _catalog = instance
        result = DPccp().optimize(graph)
        assert result.counters.inner_counter == (
            result.counters.csg_cmp_pair_counter // 2
        )

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_table_sizes_equal_connected_subset_count(self, instance):
        graph, _catalog = instance
        sizes = {
            algorithm.optimize(graph).table_size
            for algorithm in (DPsize(), DPsub(), DPccp())
        }
        assert len(sizes) == 1
