"""Property-based tests for query graphs (hypothesis)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import bitset
from repro.graph.generators import random_connected_graph
from repro.graph.querygraph import QueryGraph


@st.composite
def connected_graphs(draw, max_n: int = 9):
    """Random connected query graphs with random selectivities."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=1, max_value=max_n))
    extra = draw(st.floats(min_value=0.0, max_value=1.0))
    return random_connected_graph(n, random.Random(seed), extra)


@st.composite
def graph_and_mask(draw, max_n: int = 9):
    graph = draw(connected_graphs(max_n))
    mask = draw(
        st.integers(min_value=0, max_value=graph.all_relations)
    )
    return graph, mask


class TestNeighborhood:
    @given(graph_and_mask())
    def test_neighborhood_disjoint_from_set(self, pair):
        graph, mask = pair
        assert graph.neighborhood(mask) & mask == 0

    @given(graph_and_mask())
    def test_neighborhood_union_rule(self, pair):
        """Paper §3.2: N(S ∪ S') = (N(S) ∪ N(S')) \\ (S ∪ S')."""
        graph, mask = pair
        left = mask & 0b1010101010
        right = mask & ~0b1010101010
        combined = graph.neighborhood(left | right)
        assert combined == (
            (graph.neighborhood(left) | graph.neighborhood(right))
            & ~(left | right)
        )

    @given(graph_and_mask())
    def test_neighborhood_members_adjacent(self, pair):
        graph, mask = pair
        for neighbor in bitset.iter_bits(graph.neighborhood(mask)):
            assert graph.neighbor_mask(neighbor) & mask


class TestConnectedness:
    @given(graph_and_mask())
    def test_expanding_by_neighbor_preserves_connectedness(self, pair):
        """Paper §3.2: a connected set plus neighborhood subset stays connected."""
        graph, mask = pair
        if mask == 0 or not graph.is_connected_set(mask):
            return
        neighborhood = graph.neighborhood(mask)
        if neighborhood == 0:
            return
        grow = neighborhood & -neighborhood
        assert graph.is_connected_set(mask | grow)

    @given(connected_graphs())
    def test_whole_graph_connected(self, graph):
        assert graph.is_connected
        assert graph.is_connected_set(graph.all_relations)

    @given(graph_and_mask())
    def test_connected_sets_have_internal_spanning(self, pair):
        """A connected set of size k has at least k-1 internal edges."""
        graph, mask = pair
        if mask == 0 or not graph.is_connected_set(mask):
            return
        internal = len(list(graph.internal_edges(mask)))
        assert internal >= bitset.popcount(mask) - 1

    @given(graph_and_mask(), graph_and_mask())
    def test_are_connected_symmetric(self, pair_a, pair_b):
        graph, left = pair_a
        _graph_b, right_raw = pair_b
        right = right_raw & graph.all_relations & ~left
        assert graph.are_connected(left, right) == graph.are_connected(
            right, left
        )


class TestBfsRenumbering:
    @given(connected_graphs())
    @settings(max_examples=40)
    def test_renumbered_graph_is_bfs_numbered(self, graph):
        renumbered, order = graph.bfs_renumbered()
        assert renumbered.is_bfs_numbered()
        assert sorted(order) == list(range(graph.n_relations))
        assert len(renumbered.edges) == len(graph.edges)

    @given(connected_graphs())
    @settings(max_examples=40)
    def test_renumbering_preserves_selectivity_multiset(self, graph):
        renumbered, _order = graph.bfs_renumbered()
        original = sorted(edge.selectivity for edge in graph.edges)
        permuted = sorted(edge.selectivity for edge in renumbered.edges)
        assert original == permuted
