"""Property-based tests over the baseline/extension optimizers.

Complements ``test_optimizer_props``: the heuristics (GOO, QuickPick,
IDP) and restricted/extended spaces (LeftDeepDP, DPall) must respect
the ordering ``DPall <= DPccp <= {LeftDeepDP, GOO, QuickPick, IDP}``
on every instance, and all must emit structurally sound plans.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.catalog.synthetic import random_catalog
from repro.core import (
    DPall,
    DPccp,
    GreedyOperatorOrdering,
    IterativeDP,
    LeftDeepDP,
    QuickPick,
)
from repro.graph.generators import random_connected_graph
from repro.plans.metrics import PlanShape, classify_plan_shape
from repro.plans.visitors import iter_leaves, validate_plan


@st.composite
def instances(draw, max_n: int = 7):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=2, max_value=max_n))
    extra = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = random.Random(seed)
    graph = random_connected_graph(n, rng, extra)
    catalog = random_catalog(n, rng)
    return graph, catalog, seed


TOLERANCE = 1 + 1e-9


class TestCostOrdering:
    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_space_and_heuristic_ordering(self, instance):
        graph, catalog, seed = instance
        optimum = DPccp().optimize(graph, catalog=catalog).cost
        wider = DPall().optimize(graph, catalog=catalog).cost
        assert wider <= optimum * TOLERANCE

        for algorithm in (
            LeftDeepDP(),
            GreedyOperatorOrdering(),
            QuickPick(samples=10, rng=seed),
            IterativeDP(k=3),
        ):
            cost = algorithm.optimize(graph, catalog=catalog).cost
            assert cost * TOLERANCE >= optimum, algorithm.name


class TestStructuralSoundness:
    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_plans_cover_relations_exactly_once(self, instance):
        graph, catalog, seed = instance
        for algorithm in (
            LeftDeepDP(),
            GreedyOperatorOrdering(),
            QuickPick(samples=5, rng=seed),
            IterativeDP(k=3),
        ):
            plan = algorithm.optimize(graph, catalog=catalog).plan
            validate_plan(plan, graph)
            leaves = sorted(leaf.relation_index for leaf in iter_leaves(plan))
            assert leaves == list(range(graph.n_relations)), algorithm.name

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_dpall_plans_sound_modulo_cross_products(self, instance):
        graph, catalog, _seed = instance
        plan = DPall().optimize(graph, catalog=catalog).plan
        validate_plan(plan, graph, forbid_cross_products=False)

    @given(instances())
    @settings(max_examples=25, deadline=None)
    def test_leftdeep_shape(self, instance):
        graph, catalog, _seed = instance
        plan = LeftDeepDP().optimize(graph, catalog=catalog).plan
        assert classify_plan_shape(plan) in (
            PlanShape.LEFT_DEEP,
            PlanShape.LEAF,
        )
