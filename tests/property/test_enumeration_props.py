"""Property-based tests for the csg/cmp enumeration (hypothesis).

These encode the paper's correctness theorems (Theorem 1 and 2) as
properties over random connected graphs.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import bitset
from repro.graph.counting import count_ccp_brute_force, count_csg_brute_force
from repro.graph.generators import random_connected_graph
from repro.graph.subgraphs import (
    enumerate_csg,
    enumerate_csg_cmp_pairs,
)


@st.composite
def bfs_graphs(draw, max_n: int = 8):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=1, max_value=max_n))
    extra = draw(st.floats(min_value=0.0, max_value=1.0))
    graph = random_connected_graph(n, random.Random(seed), extra)
    if not graph.is_bfs_numbered():
        graph, _order = graph.bfs_renumbered()
    return graph


class TestTheorem1:
    """EnumerateCsg: all connected subsets, once, subsets first."""

    @given(bfs_graphs())
    @settings(max_examples=50, deadline=None)
    def test_exactly_the_connected_subsets(self, graph):
        emitted = list(enumerate_csg(graph))
        assert len(emitted) == len(set(emitted))
        assert set(emitted) == {
            mask
            for mask in range(1, graph.all_relations + 1)
            if graph.is_connected_set(mask)
        }

    @given(bfs_graphs(max_n=7))
    @settings(max_examples=30, deadline=None)
    def test_subsets_before_supersets(self, graph):
        position = {mask: i for i, mask in enumerate(enumerate_csg(graph))}
        for mask in position:
            for other in position:
                if other != mask and bitset.is_subset(other, mask):
                    assert position[other] < position[mask]

    @given(bfs_graphs())
    @settings(max_examples=50, deadline=None)
    def test_count_matches_brute_force(self, graph):
        assert len(list(enumerate_csg(graph))) == count_csg_brute_force(graph)


class TestTheorem2:
    """EnumerateCmp via the pair stream: every pair once, valid, ordered."""

    @given(bfs_graphs())
    @settings(max_examples=50, deadline=None)
    def test_pair_count_matches_brute_force(self, graph):
        pairs = list(enumerate_csg_cmp_pairs(graph))
        assert 2 * len(pairs) == count_ccp_brute_force(graph)

    @given(bfs_graphs())
    @settings(max_examples=50, deadline=None)
    def test_pairs_are_valid_and_unique(self, graph):
        seen = set()
        for left, right in enumerate_csg_cmp_pairs(graph):
            assert left & right == 0
            assert graph.is_connected_set(left)
            assert graph.is_connected_set(right)
            assert graph.are_connected(left, right)
            key = frozenset((left, right))
            assert key not in seen
            seen.add(key)

    @given(bfs_graphs())
    @settings(max_examples=50, deadline=None)
    def test_dp_valid_emission_order(self, graph):
        solvable = {bitset.bit(i) for i in range(graph.n_relations)}
        for left, right in enumerate_csg_cmp_pairs(graph):
            assert left in solvable
            assert right in solvable
            solvable.add(left | right)

    @given(bfs_graphs())
    @settings(max_examples=50, deadline=None)
    def test_orientation_rule(self, graph):
        """min(S1) < min(S2) for every emitted pair."""
        for left, right in enumerate_csg_cmp_pairs(graph):
            assert bitset.lowest_bit_index(left) < bitset.lowest_bit_index(right)
