"""Property-based handoff battery for the escalation ladder (hypothesis).

Each rung of the ladder hands queries to the next as n grows; these
properties pin the contracts at the handoff points:

* IKKBZ (the LinDP linearizer) is exactly the optimal left-deep plan
  on random acyclic graphs — the ASI guarantee, via the independent
  :class:`~repro.core.leftdeep.LeftDeepDP` oracle;
* IDP with a block size covering the whole query degenerates to the
  exact DP — so the idp rung is a strict generalization, not a
  different optimum;
* LinDP is bracketed by the exact optimum below and GOO above on
  arbitrary connected graphs — the ladder can only improve on its own
  terminal rung.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, GreedyOperatorOrdering, IterativeDP, LinDP
from repro.core.ikkbz import IKKBZ
from repro.core.leftdeep import LeftDeepDP
from repro.cost.cout import CoutModel
from repro.graph.generators import (
    graph_for_topology,
    random_connected_graph,
    random_tree_graph,
)
from repro.plans.visitors import validate_plan

REL_TOL = 1e-9


@st.composite
def tree_instances(draw, max_n: int = 10):
    """(graph, catalog) pairs over random acyclic connected graphs."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=2, max_value=max_n))
    rng = random.Random(seed)
    graph = random_tree_graph(n, rng)
    catalog = random_catalog(n, rng)
    return graph, catalog


@st.composite
def connected_instances(draw, max_n: int = 8):
    """(graph, catalog) pairs over arbitrary connected graphs."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=2, max_value=max_n))
    extra = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = random.Random(seed)
    graph = random_connected_graph(n, rng, extra)
    catalog = random_catalog(n, rng)
    return graph, catalog


@st.composite
def paper_instances(draw, max_n: int = 12):
    """(graph, catalog) pairs over the paper's four topologies."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    topology = draw(st.sampled_from(["chain", "star", "cycle", "clique"]))
    cap = 9 if topology == "clique" else max_n  # exact reference budget
    n = draw(st.integers(min_value=3, max_value=cap))
    rng = random.Random(seed)
    graph = graph_for_topology(topology, n, rng=rng)
    catalog = random_catalog(n, rng)
    return graph, catalog


class TestLinearizerHandoff:
    @given(tree_instances())
    @settings(max_examples=40, deadline=None)
    def test_ikkbz_is_optimal_left_deep(self, instance):
        """IKKBZ == LeftDeepDP under C_out on acyclic graphs (ASI)."""
        graph, catalog = instance
        ikkbz = IKKBZ().optimize(graph, cost_model=CoutModel(graph, catalog))
        oracle = LeftDeepDP().optimize(
            graph, cost_model=CoutModel(graph, catalog)
        )
        assert ikkbz.cost == pytest.approx(oracle.cost, rel=REL_TOL)


class TestIdpHandoff:
    @given(connected_instances())
    @settings(max_examples=25, deadline=None)
    def test_idp_with_covering_block_is_exact(self, instance):
        """IDP(k >= n) must equal the exact DP, not approximate it."""
        graph, catalog = instance
        idp = IterativeDP(k=graph.n_relations).optimize(
            graph, cost_model=CoutModel(graph, catalog)
        )
        exact = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog))
        assert idp.cost == pytest.approx(exact.cost, rel=REL_TOL)


class TestLinDPBracket:
    @given(paper_instances())
    @settings(max_examples=40, deadline=None)
    def test_lindp_between_exact_and_goo(self, instance):
        graph, catalog = instance
        exact = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog))
        lindp = LinDP().optimize(graph, cost_model=CoutModel(graph, catalog))
        goo = GreedyOperatorOrdering().optimize(
            graph, cost_model=CoutModel(graph, catalog)
        )
        validate_plan(lindp.plan, graph)
        assert lindp.cost >= exact.cost / (1 + REL_TOL)
        assert lindp.cost <= goo.cost * (1 + REL_TOL)

    @given(connected_instances())
    @settings(max_examples=25, deadline=None)
    def test_lindp_bracket_on_random_graphs(self, instance):
        """Same bracket on arbitrary shapes (cyclic fallback included)."""
        graph, catalog = instance
        exact = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog))
        lindp = LinDP().optimize(graph, cost_model=CoutModel(graph, catalog))
        goo = GreedyOperatorOrdering().optimize(
            graph, cost_model=CoutModel(graph, catalog)
        )
        validate_plan(lindp.plan, graph)
        assert lindp.cost >= exact.cost / (1 + REL_TOL)
        assert lindp.cost <= goo.cost * (1 + REL_TOL)
