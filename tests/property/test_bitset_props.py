"""Property-based tests for repro.bitset (hypothesis)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro import bitset

masks = st.integers(min_value=0, max_value=(1 << 16) - 1)
nonempty_masks = st.integers(min_value=1, max_value=(1 << 16) - 1)


class TestIterBits:
    @given(masks)
    def test_roundtrip(self, mask):
        assert bitset.set_of(bitset.iter_bits(mask)) == mask

    @given(masks)
    def test_count_matches_popcount(self, mask):
        assert len(list(bitset.iter_bits(mask))) == bitset.popcount(mask)

    @given(masks)
    def test_ascending(self, mask):
        indices = list(bitset.iter_bits(mask))
        assert indices == sorted(indices)


class TestSubsetEnumeration:
    @given(st.integers(min_value=0, max_value=(1 << 12) - 1))
    def test_subset_count(self, mask):
        expected = max(0, 2 ** bitset.popcount(mask) - 2)
        assert len(list(bitset.iter_subsets(mask))) == expected

    @given(nonempty_masks)
    def test_all_are_strict_nonempty_subsets(self, mask):
        for subset in bitset.iter_subsets(mask & 0xFFF):
            inner = mask & 0xFFF
            if inner == 0:
                continue
            assert subset != 0
            assert subset != inner
            assert bitset.is_subset(subset, inner)

    @given(st.integers(min_value=0, max_value=(1 << 12) - 1))
    def test_ascending_numeric_order(self, mask):
        subsets = list(bitset.iter_subsets(mask))
        assert subsets == sorted(subsets)

    @given(st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_no_duplicates(self, mask):
        subsets = list(bitset.iter_subsets(mask))
        assert len(subsets) == len(set(subsets))

    @given(st.integers(min_value=1, max_value=(1 << 10) - 1))
    def test_all_subsets_includes_self_last(self, mask):
        all_subsets = list(bitset.iter_all_subsets(mask))
        assert all_subsets[-1] == mask


class TestAlgebra:
    @given(masks, masks)
    def test_disjoint_iff_empty_intersection(self, a, b):
        assert bitset.is_disjoint(a, b) == (a & b == 0)

    @given(nonempty_masks)
    def test_lowest_and_highest(self, mask):
        indices = list(bitset.iter_bits(mask))
        assert bitset.lowest_bit_index(mask) == indices[0]
        assert bitset.highest_bit_index(mask) == indices[-1]
        assert bitset.lowest_bit(mask) == 1 << indices[0]

    @given(st.integers(min_value=0, max_value=(1 << 8) - 1),
           st.integers(min_value=0, max_value=(1 << 8) - 1))
    def test_supersets_within(self, mask, universe):
        mask &= universe
        supersets = list(bitset.iter_supersets_within(mask, universe))
        free_bits = bitset.popcount(universe & ~mask)
        assert len(supersets) == 2**free_bits
        assert all(bitset.is_subset(mask, superset) for superset in supersets)
        assert all(bitset.is_subset(superset, universe) for superset in supersets)
