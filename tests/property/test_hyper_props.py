"""Property-based tests for the hypergraph extension (hypothesis)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import bitset
from repro.catalog.synthetic import random_catalog
from repro.core import DPccp
from repro.graph.generators import random_connected_graph
from repro.hyper import (
    DPhyp,
    ExhaustiveHyperOptimizer,
    HyperCoutModel,
    Hyperedge,
    Hypergraph,
)
from repro.hyper.exhaustive import count_hyper_ccp
from repro.plans.visitors import iter_leaves


@st.composite
def hypergraphs(draw, max_n: int = 7):
    """Plannable random hypergraphs: simple spanning tree + complex edges."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=2, max_value=max_n))
    complex_count = draw(st.integers(min_value=0, max_value=3))
    rng = random.Random(seed)
    edges = [
        Hyperedge(
            bitset.bit(rng.randrange(i)), bitset.bit(i), rng.uniform(0.01, 0.5)
        )
        for i in range(1, n)
    ]
    for _ in range(complex_count):
        members = [i for i in range(n) if rng.random() < 0.5]
        if len(members) < 2:
            continue
        split = rng.randint(1, len(members) - 1)
        edges.append(
            Hyperedge(
                bitset.set_of(members[:split]),
                bitset.set_of(members[split:]),
                rng.uniform(0.01, 0.9),
            )
        )
    return Hypergraph(n, edges), seed


@st.composite
def simple_graph_pairs(draw, max_n: int = 7):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=2, max_value=max_n))
    extra = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = random.Random(seed)
    graph = random_connected_graph(n, rng, extra)
    return graph, Hypergraph.from_query_graph(graph), seed


class TestDPhypProperties:
    @given(hypergraphs())
    @settings(max_examples=30, deadline=None)
    def test_optimal_and_valid(self, instance):
        hypergraph, seed = instance
        catalog = random_catalog(hypergraph.n_relations, seed)
        result = DPhyp().optimize(
            hypergraph, cost_model=HyperCoutModel(hypergraph, catalog)
        )
        reference = ExhaustiveHyperOptimizer().optimize(
            hypergraph, cost_model=HyperCoutModel(hypergraph, catalog)
        )
        assert result.cost == pytest.approx(reference.cost)
        leaves = sorted(leaf.relation_index for leaf in iter_leaves(result.plan))
        assert leaves == list(range(hypergraph.n_relations))

    @given(hypergraphs())
    @settings(max_examples=30, deadline=None)
    def test_pair_count_is_exact(self, instance):
        hypergraph, _seed = instance
        result = DPhyp().optimize(hypergraph)
        assert result.counters.ono_lohman_counter == count_hyper_ccp(hypergraph)

    @given(simple_graph_pairs())
    @settings(max_examples=30, deadline=None)
    def test_degenerates_to_dpccp_on_simple_graphs(self, instance):
        graph, hypergraph, seed = instance
        catalog = random_catalog(graph.n_relations, seed)
        hyp = DPhyp().optimize(hypergraph, catalog=catalog)
        ccp = DPccp().optimize(graph, catalog=catalog)
        assert hyp.counters.ono_lohman_counter == ccp.counters.ono_lohman_counter
        assert hyp.cost == pytest.approx(ccp.cost)
        assert hyp.table_size == ccp.table_size


class TestHypergraphInvariants:
    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_neighborhood_disjoint_from_set_and_exclusion(self, instance):
        hypergraph, seed = instance
        rng = random.Random(seed)
        for _ in range(5):
            subset = rng.randrange(1, hypergraph.all_relations + 1)
            excluded = rng.randrange(0, hypergraph.all_relations + 1) & ~subset
            neighborhood = hypergraph.neighborhood(subset, excluded)
            assert neighborhood & subset == 0
            assert neighborhood & excluded == 0

    @given(hypergraphs())
    @settings(max_examples=40, deadline=None)
    def test_are_connected_symmetric(self, instance):
        hypergraph, seed = instance
        rng = random.Random(seed)
        for _ in range(5):
            left = rng.randrange(1, hypergraph.all_relations + 1)
            right = rng.randrange(1, hypergraph.all_relations + 1) & ~left
            assert hypergraph.are_connected(left, right) == (
                hypergraph.are_connected(right, left)
            )

    @given(simple_graph_pairs())
    @settings(max_examples=30, deadline=None)
    def test_simple_embedding_preserves_connectivity(self, instance):
        graph, hypergraph, _seed = instance
        for mask in range(1, min(graph.all_relations, 255) + 1):
            mask &= graph.all_relations
            if mask == 0:
                continue
            assert hypergraph.is_connected_set(mask) == graph.is_connected_set(
                mask
            )
