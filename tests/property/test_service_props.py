"""Property-based tests over the service layer (hypothesis).

Two properties (ISSUE satellite):

1. A cache hit returns a plan with cost identical (up to float
   round-off) to a fresh optimization of the same query.
2. Isomorphic relabelings of a query hit the same cache entry, and the
   remapped plan is valid and optimal for the relabelled instance.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.synthetic import random_catalog
from repro.core import optimize
from repro.plans.visitors import validate_plan
from repro.service import PlanService, compute_fingerprint
from repro.graph.generators import graph_for_topology, random_connected_graph

TOPOLOGIES = ("chain", "cycle", "star", "clique")


@st.composite
def instances(draw, max_n: int = 10):
    """(graph, catalog) pairs over random and structured topologies."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    n = draw(st.integers(min_value=2, max_value=max_n))
    kind = draw(st.sampled_from(TOPOLOGIES + ("random",)))
    rng = random.Random(seed)
    if kind == "cycle":
        n = max(n, 3)  # a cycle needs at least three relations
    if kind == "random":
        graph = random_connected_graph(n, rng, rng.random())
    else:
        graph = graph_for_topology(kind, n, rng=rng)
    return graph, random_catalog(n, rng)


class TestCacheHitFidelity:
    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_hit_cost_equals_fresh_optimization(self, instance):
        graph, catalog = instance
        with PlanService(workers=1) as service:
            first = service.plan(graph, catalog)
            second = service.plan(graph, catalog)
            assert not first.cache_hit and second.cache_hit
            direct = optimize(graph, catalog=catalog, algorithm="adaptive")
            assert second.cost == pytest.approx(direct.cost)
            assert second.cost == first.cost
            validate_plan(second.plan, graph)


class TestIsomorphismProperty:
    @given(instances(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_relabelings_share_cache_entry(self, instance, perm_seed):
        graph, catalog = instance
        permutation = list(range(graph.n_relations))
        random.Random(perm_seed).shuffle(permutation)
        twin_graph = graph.relabelled(permutation)
        twin_catalog = catalog.relabelled(permutation)

        # the fingerprints agree before any service is involved
        assert (
            compute_fingerprint(graph, catalog).key
            == compute_fingerprint(twin_graph, twin_catalog).key
        )

        with PlanService(workers=1) as service:
            service.plan(graph, catalog)
            response = service.plan(twin_graph, twin_catalog)
            assert response.cache_hit, "isomorphic twin must hit the cache"
            # the remapped plan is valid for the twin's own numbering
            # and costs exactly what optimizing the twin directly would
            validate_plan(response.plan, twin_graph)
            direct = optimize(
                twin_graph, catalog=twin_catalog, algorithm="adaptive"
            )
            assert response.cost == pytest.approx(direct.cost)
