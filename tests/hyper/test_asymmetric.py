"""DPhyp under an asymmetric cost model (both-orders branch)."""

from __future__ import annotations

import random

import pytest

from repro import bitset
from repro.catalog.synthetic import random_catalog
from repro.hyper import DPhyp, ExhaustiveHyperOptimizer, HyperCoutModel
from repro.hyper.hypergraph import Hyperedge, Hypergraph
from repro.plans.jointree import JoinTree


class LopsidedHyperModel(HyperCoutModel):
    """C_out plus a penalty when the bigger input sits on the right.

    Order-sensitive but monotone in child costs, so Bellman holds and
    exact enumerators must still agree — while exercising DPhyp's
    asymmetric (both join orders) code path.
    """

    name = "hyper-lopsided"
    symmetric = False

    def price(self, left: JoinTree, right: JoinTree) -> tuple[float, float, str]:
        cardinality = self.set_cardinality(left.relations | right.relations)
        penalty = 0.25 * max(0.0, right.cardinality - left.cardinality)
        cost = left.cost + right.cost + cardinality + penalty
        return cardinality, cost, "Join"


def random_hypergraph(rng: random.Random, n: int) -> Hypergraph:
    edges = [
        Hyperedge(bitset.bit(rng.randrange(i)), bitset.bit(i), rng.uniform(0.01, 0.5))
        for i in range(1, n)
    ]
    members = [i for i in range(n) if rng.random() < 0.6]
    if len(members) >= 2:
        split = rng.randint(1, len(members) - 1)
        edges.append(
            Hyperedge(
                bitset.set_of(members[:split]),
                bitset.set_of(members[split:]),
                rng.uniform(0.05, 0.9),
            )
        )
    return Hypergraph(n, edges)


class TestAsymmetricDPhyp:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exhaustive(self, seed):
        rng = random.Random(4200 + seed)
        n = rng.randint(3, 6)
        hypergraph = random_hypergraph(rng, n)
        catalog = random_catalog(n, rng)
        result = DPhyp().optimize(
            hypergraph, cost_model=LopsidedHyperModel(hypergraph, catalog)
        )
        reference = ExhaustiveHyperOptimizer().optimize(
            hypergraph, cost_model=LopsidedHyperModel(hypergraph, catalog)
        )
        assert result.cost == pytest.approx(reference.cost)

    def test_both_orders_priced(self):
        rng = random.Random(77)
        hypergraph = random_hypergraph(rng, 5)
        catalog = random_catalog(5, rng)
        result = DPhyp().optimize(
            hypergraph, cost_model=LopsidedHyperModel(hypergraph, catalog)
        )
        assert result.counters.create_join_tree_calls == (
            2 * result.counters.ono_lohman_counter
        )

    def test_symmetric_model_prices_once(self):
        rng = random.Random(78)
        hypergraph = random_hypergraph(rng, 5)
        result = DPhyp().optimize(hypergraph)
        assert result.counters.create_join_tree_calls == (
            result.counters.ono_lohman_counter
        )
