"""Unit tests for the hypergraph substrate."""

from __future__ import annotations

import pytest

from repro import bitset
from repro.errors import GraphError
from repro.graph.generators import chain_graph, clique_graph, star_graph
from repro.hyper.hypergraph import Hyperedge, Hypergraph


def triangle_plus_hyper() -> Hypergraph:
    """Simple chain 0-1-2 plus complex hyperedge ({0,1},{3})."""
    return Hypergraph(
        4,
        [
            Hyperedge(0b0001, 0b0010, 0.5),
            Hyperedge(0b0010, 0b0100, 0.5),
            Hyperedge(0b0011, 0b1000, 0.1),
        ],
    )


class TestHyperedge:
    def test_basic(self):
        edge = Hyperedge(0b011, 0b100, 0.5, "a+b = c")
        assert edge.nodes == 0b111
        assert not edge.is_simple

    def test_simple_detection(self):
        assert Hyperedge(0b001, 0b010).is_simple

    def test_empty_side_rejected(self):
        with pytest.raises(GraphError):
            Hyperedge(0, 0b1)

    def test_overlap_rejected(self):
        with pytest.raises(GraphError):
            Hyperedge(0b011, 0b010)

    def test_bad_selectivity_rejected(self):
        with pytest.raises(GraphError):
            Hyperedge(0b1, 0b10, 0.0)

    def test_normalized_orientation(self):
        edge = Hyperedge(0b100, 0b011).normalized()
        assert bitset.lowest_bit_index(edge.left) < bitset.lowest_bit_index(
            edge.right
        )


class TestConstruction:
    def test_zero_relations_rejected(self):
        with pytest.raises(GraphError):
            Hypergraph(0, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Hypergraph(2, [Hyperedge(0b001, 0b100)])

    def test_from_query_graph_preserves_structure(self):
        graph = star_graph(5, selectivity=0.25)
        hyper = Hypergraph.from_query_graph(graph)
        assert hyper.n_relations == 5
        assert len(hyper.edges) == 4
        assert all(edge.is_simple for edge in hyper.edges)
        assert all(edge.selectivity == 0.25 for edge in hyper.edges)

    def test_complex_edges_listed(self):
        hyper = triangle_plus_hyper()
        assert len(hyper.complex_edges) == 1

    def test_repr(self):
        assert "complex=1" in repr(triangle_plus_hyper())


class TestConnectivity:
    def test_are_connected_simple(self):
        hyper = triangle_plus_hyper()
        assert hyper.are_connected(0b0001, 0b0010)
        assert not hyper.are_connected(0b0001, 0b0100)

    def test_are_connected_requires_full_containment(self):
        hyper = triangle_plus_hyper()
        # ({0,1},{3}) applies only when both 0 and 1 are on one side.
        assert hyper.are_connected(0b0011, 0b1000)
        assert not hyper.are_connected(0b0001, 0b1000)
        assert not hyper.are_connected(0b0010, 0b1000)

    def test_is_connected_set(self):
        hyper = triangle_plus_hyper()
        assert hyper.is_connected_set(0b0011)
        assert hyper.is_connected_set(0b1011)  # {0,1} + hyperedge to {3}
        assert not hyper.is_connected_set(0b1001)  # {0,3}: edge not contained
        assert not hyper.is_connected_set(0b0101)  # {0,2}: no edge
        assert hyper.is_connected_set(0b1111)

    def test_empty_and_singletons(self):
        hyper = triangle_plus_hyper()
        assert not hyper.is_connected_set(0)
        for index in range(4):
            assert hyper.is_connected_set(bitset.bit(index))

    def test_whole_graph_connected(self):
        assert triangle_plus_hyper().is_connected
        lonely = Hypergraph(3, [Hyperedge(0b001, 0b010)])
        assert not lonely.is_connected

    def test_matches_simple_graph_connectivity(self):
        graph = chain_graph(6)
        hyper = Hypergraph.from_query_graph(graph)
        for mask in range(1, graph.all_relations + 1):
            assert hyper.is_connected_set(mask) == graph.is_connected_set(mask)


class TestNeighborhood:
    def test_simple_edges_full_neighbors(self):
        graph = clique_graph(4)
        hyper = Hypergraph.from_query_graph(graph)
        assert hyper.neighborhood(0b0001, 0) == 0b1110
        assert hyper.neighborhood(0b0001, 0b0100) == 0b1010

    def test_complex_edge_contributes_representative(self):
        hyper = triangle_plus_hyper()
        # From {0,1}: simple neighbor 2, plus min({3}) via the hyperedge.
        assert hyper.neighborhood(0b0011, 0) == 0b1100

    def test_half_contained_hyperedge_is_silent(self):
        hyper = triangle_plus_hyper()
        # From {0} alone the ({0,1},{3}) hyperedge must not fire.
        assert hyper.neighborhood(0b0001, 0) == 0b0010

    def test_excluded_nodes_removed(self):
        hyper = triangle_plus_hyper()
        assert hyper.neighborhood(0b0011, 0b1000) == 0b0100

    def test_representative_is_minimum(self):
        hyper = Hypergraph(
            4, [Hyperedge(0b0001, 0b1100, 0.5), Hyperedge(0b0001, 0b0010, 0.5)]
        )
        # Far side {2,3} contributes min = node 2 only.
        assert hyper.neighborhood(0b0001, 0) == 0b0110


class TestCrossingSelectivity:
    def test_applicable_edges_multiply(self):
        hyper = triangle_plus_hyper()
        assert hyper.crossing_selectivity(0b0011, 0b1000) == pytest.approx(0.1)
        assert hyper.crossing_selectivity(0b0001, 0b0010) == pytest.approx(0.5)

    def test_inapplicable_edge_ignored(self):
        hyper = triangle_plus_hyper()
        assert hyper.crossing_selectivity(0b0001, 0b1000) == 1.0
