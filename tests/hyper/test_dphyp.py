"""Unit tests for DPhyp: equivalence with DPccp, optimality, counters."""

from __future__ import annotations

import random

import pytest

from repro import bitset
from repro.catalog.synthetic import random_catalog
from repro.core import DPccp
from repro.errors import DisconnectedGraphError, OptimizerError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    random_connected_graph,
    star_graph,
)
from repro.hyper import (
    DPhyp,
    ExhaustiveHyperOptimizer,
    HyperCoutModel,
    Hyperedge,
    Hypergraph,
)
from repro.hyper.exhaustive import count_hyper_ccp, plannable_sets
from repro.plans.visitors import iter_leaves


def random_hypergraph(rng: random.Random, n: int) -> Hypergraph:
    """Simple random spanning tree plus a few complex hyperedges."""
    edges = [
        Hyperedge(bitset.bit(rng.randrange(i)), bitset.bit(i), rng.uniform(0.01, 0.5))
        for i in range(1, n)
    ]
    for _ in range(rng.randint(0, 3)):
        members = [i for i in range(n) if rng.random() < 0.5]
        if len(members) < 2:
            continue
        split = rng.randint(1, len(members) - 1)
        edges.append(
            Hyperedge(
                bitset.set_of(members[:split]),
                bitset.set_of(members[split:]),
                rng.uniform(0.01, 0.9),
            )
        )
    return Hypergraph(n, edges)


class TestSimpleGraphEquivalence:
    """On simple graphs DPhyp must coincide with DPccp exactly."""

    @pytest.mark.parametrize(
        "graph",
        [chain_graph(7), cycle_graph(6), star_graph(7), clique_graph(5)],
        ids=["chain", "cycle", "star", "clique"],
    )
    def test_same_pairs_and_cost(self, graph):
        hyper = Hypergraph.from_query_graph(graph)
        hyp_result = DPhyp().optimize(hyper)
        ccp_result = DPccp().optimize(graph)
        assert (
            hyp_result.counters.ono_lohman_counter
            == ccp_result.counters.ono_lohman_counter
        )
        assert hyp_result.cost == pytest.approx(ccp_result.cost)
        assert hyp_result.table_size == ccp_result.table_size

    def test_random_simple_graphs(self, rng):
        for _ in range(10):
            n = rng.randint(2, 7)
            graph = random_connected_graph(n, rng, rng.random() * 0.6)
            catalog = random_catalog(n, rng)
            hyper = Hypergraph.from_query_graph(graph)
            hyp = DPhyp().optimize(hyper, catalog=catalog)
            ccp = DPccp().optimize(graph, catalog=catalog)
            assert hyp.cost == pytest.approx(ccp.cost)
            assert (
                hyp.counters.ono_lohman_counter
                == ccp.counters.ono_lohman_counter
            )


class TestHypergraphOptimality:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_exhaustive(self, seed):
        rng = random.Random(9000 + seed)
        n = rng.randint(3, 7)
        hyper = random_hypergraph(rng, n)
        catalog = random_catalog(n, rng)
        result = DPhyp().optimize(hyper, cost_model=HyperCoutModel(hyper, catalog))
        reference = ExhaustiveHyperOptimizer().optimize(
            hyper, cost_model=HyperCoutModel(hyper, catalog)
        )
        assert result.cost == pytest.approx(reference.cost)

    @pytest.mark.parametrize("seed", range(12))
    def test_inner_counter_is_exact_pair_count(self, seed):
        rng = random.Random(9100 + seed)
        n = rng.randint(3, 7)
        hyper = random_hypergraph(rng, n)
        result = DPhyp().optimize(hyper)
        assert result.counters.ono_lohman_counter == count_hyper_ccp(hyper)
        assert result.counters.inner_counter == result.counters.ono_lohman_counter

    def test_plans_cover_all_relations_once(self, rng):
        for _ in range(8):
            n = rng.randint(3, 7)
            hyper = random_hypergraph(rng, n)
            plan = DPhyp().optimize(hyper).plan
            leaves = sorted(leaf.relation_index for leaf in iter_leaves(plan))
            assert leaves == list(range(n))


class TestHyperedgeSemantics:
    def test_hyperedge_forces_grouping(self):
        """A plan may only use the hyperedge once both sides are complete.

        Chain 0-1-2 where relation 3 attaches ONLY via ({0,1}, {3}):
        every valid tree must join {3} against a set containing both
        0 and 1.
        """
        hyper = Hypergraph(
            4,
            [
                Hyperedge(0b0001, 0b0010, 0.5),
                Hyperedge(0b0010, 0b0100, 0.5),
                Hyperedge(0b0011, 0b1000, 0.1),
            ],
        )
        result = DPhyp().optimize(hyper)
        # Find the join that brings in relation 3.
        def check(node):
            if node.is_leaf:
                return
            left, right = node.left, node.right
            if left.relations == 0b1000:
                assert bitset.is_subset(0b0011, right.relations)
            if right.relations == 0b1000:
                assert bitset.is_subset(0b0011, left.relations)
            check(left)
            check(right)

        check(result.plan)

    def test_unplannable_hypergraph_rejected(self):
        """Connected only through a hyperedge with a disconnected side."""
        hyper = Hypergraph(3, [Hyperedge(0b011, 0b100, 0.5)])
        # {0,1} has no internal edge: the single hyperedge can never fire.
        assert hyper.is_connected  # hyper-connected...
        with pytest.raises(OptimizerError):
            DPhyp().optimize(hyper)  # ...but not plannable

    def test_disconnected_rejected(self):
        hyper = Hypergraph(3, [Hyperedge(0b001, 0b010)])
        with pytest.raises(DisconnectedGraphError):
            DPhyp().optimize(hyper)

    def test_single_relation(self):
        hyper = Hypergraph.from_query_graph(chain_graph(1))
        result = DPhyp().optimize(hyper)
        assert result.plan.is_leaf
        assert result.counters.inner_counter == 0


class TestPlannableSets:
    def test_simple_graph_equals_connectivity(self):
        graph = chain_graph(5)
        hyper = Hypergraph.from_query_graph(graph)
        plannable = plannable_sets(hyper)
        for mask in range(1, graph.all_relations + 1):
            assert plannable[mask] == graph.is_connected_set(mask)

    def test_hyper_connected_but_unplannable(self):
        hyper = Hypergraph(3, [Hyperedge(0b011, 0b100, 0.5)])
        plannable = plannable_sets(hyper)
        assert hyper.is_connected_set(0b111)
        assert not plannable[0b111]
