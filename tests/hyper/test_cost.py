"""Unit tests for the hypergraph C_out cost model."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog
from repro.errors import CatalogError
from repro.hyper.cost import HyperCoutModel
from repro.hyper.hypergraph import Hyperedge, Hypergraph


def model() -> HyperCoutModel:
    hypergraph = Hypergraph(
        3,
        [
            Hyperedge(0b001, 0b010, 0.1),
            Hyperedge(0b011, 0b100, 0.01),
        ],
    )
    return HyperCoutModel(hypergraph, Catalog.from_cardinalities([100, 50, 30]))


class TestSetCardinality:
    def test_base_relations(self):
        assert model().set_cardinality(0b001) == 100
        assert model().set_cardinality(0b010) == 50

    def test_pair_with_simple_edge(self):
        assert model().set_cardinality(0b011) == pytest.approx(100 * 50 * 0.1)

    def test_containment_applies_hyperedge(self):
        # {0,1,2} contains both edges.
        assert model().set_cardinality(0b111) == pytest.approx(
            100 * 50 * 30 * 0.1 * 0.01
        )

    def test_half_contained_hyperedge_ignored(self):
        # {0,2}: the complex edge needs node 1 too; no edge applies.
        assert model().set_cardinality(0b101) == pytest.approx(100 * 30)

    def test_memoized(self):
        instance = model()
        first = instance.set_cardinality(0b111)
        assert instance.set_cardinality(0b111) == first


class TestPlanFactory:
    def test_leaf(self):
        leaf = model().leaf(2)
        assert leaf.cardinality == 30
        assert leaf.cost == 0.0

    def test_join_cost_accumulates(self):
        instance = model()
        pair = instance.join(instance.leaf(0), instance.leaf(1))
        full = instance.join(pair, instance.leaf(2))
        assert pair.cost == pytest.approx(pair.cardinality)
        assert full.cost == pytest.approx(pair.cardinality + full.cardinality)

    def test_price_matches_join(self):
        instance = model()
        left, right = instance.leaf(0), instance.leaf(1)
        cardinality, cost, operator = instance.price(left, right)
        built = instance.join(left, right)
        assert built.cardinality == cardinality
        assert built.cost == cost
        assert built.operator == operator

    def test_symmetric_flag(self):
        assert HyperCoutModel.symmetric is True

    def test_catalog_mismatch_rejected(self):
        hypergraph = Hypergraph(3, [Hyperedge(0b001, 0b010)])
        with pytest.raises(CatalogError):
            HyperCoutModel(hypergraph, Catalog.from_cardinalities([1, 2]))

    def test_default_catalog(self):
        hypergraph = Hypergraph(2, [Hyperedge(0b01, 0b10)])
        instance = HyperCoutModel(hypergraph)
        assert instance.leaf(0).cardinality == instance.leaf(1).cardinality
