"""Unit tests for HypergraphBuilder."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, UnknownRelationError
from repro.hyper import DPhyp, HyperCoutModel, HypergraphBuilder


def currency_builder() -> HypergraphBuilder:
    return (
        HypergraphBuilder()
        .relation("orders", cardinality=1_000_000)
        .relation("rates", cardinality=500)
        .relation("currency", cardinality=30)
        .join(["orders"], ["rates"], selectivity=1 / 500)
        .join(["rates"], ["currency"], selectivity=1 / 30)
        .join(["orders", "rates"], ["currency"], selectivity=0.001)
    )


class TestBuilder:
    def test_builds_graph_and_catalog(self):
        hypergraph, catalog = currency_builder().build()
        assert hypergraph.n_relations == 3
        assert len(hypergraph.edges) == 3
        assert len(hypergraph.complex_edges) == 1
        assert catalog.by_name("rates").cardinality == 500

    def test_end_to_end_optimization(self):
        hypergraph, catalog = currency_builder().build()
        result = DPhyp().optimize(
            hypergraph, cost_model=HyperCoutModel(hypergraph, catalog)
        )
        assert result.plan.size == 3

    def test_duplicate_relation_rejected(self):
        builder = HypergraphBuilder().relation("t")
        with pytest.raises(GraphError):
            builder.relation("t")

    def test_bad_cardinality_rejected(self):
        with pytest.raises(GraphError):
            HypergraphBuilder().relation("t", cardinality=0)

    def test_unknown_relation_in_join_rejected(self):
        builder = HypergraphBuilder().relation("a").relation("b")
        with pytest.raises(UnknownRelationError):
            builder.join(["a"], ["missing"])

    def test_empty_join_side_rejected(self):
        builder = HypergraphBuilder().relation("a").relation("b")
        with pytest.raises(GraphError):
            builder.join([], ["a"])

    def test_overlapping_sides_rejected(self):
        builder = HypergraphBuilder().relation("a").relation("b")
        with pytest.raises(GraphError):
            builder.join(["a", "b"], ["b"])

    def test_empty_builder_rejected(self):
        with pytest.raises(GraphError):
            HypergraphBuilder().build()

    def test_default_predicate_text(self):
        hypergraph, _ = currency_builder().build()
        complex_edge = hypergraph.complex_edges[0]
        assert "orders" in (complex_edge.predicate or "")

    def test_n_relations_property(self):
        assert currency_builder().n_relations == 3
