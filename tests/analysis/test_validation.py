"""Unit tests for repro.analysis.validation."""

from __future__ import annotations

import pytest

from repro.analysis.validation import (
    CounterComparison,
    compare_counters,
    verify_figure3,
)


class TestCompareCounters:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_small_sizes_match(self, topology):
        comparison = compare_counters(topology, 7)
        assert comparison.matches, comparison.mismatches()

    def test_cycle_n2_degenerates(self):
        comparison = compare_counters("cycle", 2)
        assert comparison.matches

    def test_mismatch_reporting(self):
        comparison = CounterComparison(
            topology="chain",
            n=3,
            predicted_dpsize=1,
            measured_dpsize=2,
            predicted_dpsub=3,
            measured_dpsub=3,
            predicted_ccp=4,
            measured_ccp=4,
            predicted_csg=5,
            measured_csg=5,
        )
        assert not comparison.matches
        problems = comparison.mismatches()
        assert len(problems) == 1
        assert "I_DPsize" in problems[0]


class TestVerifyFigure3:
    def test_default_slice_all_match(self):
        comparisons = verify_figure3(sizes=(2, 5))
        assert len(comparisons) == 8
        for comparison in comparisons:
            assert comparison.matches, comparison.mismatches()
