"""Unit tests for search-space counting."""

from __future__ import annotations

import random

import pytest

from repro import bitset
from repro.analysis.searchspace import (
    SearchSpaceSummary,
    clique_tree_count,
    count_join_trees,
    count_join_trees_unordered,
    search_space_summary,
)
from repro.errors import GraphError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    random_connected_graph,
    star_graph,
)
from repro.graph.querygraph import QueryGraph


def brute_force_ordered_trees(graph: QueryGraph, mask: int | None = None) -> int:
    """Independent recursive count of ordered cross-product-free trees."""
    if mask is None:
        mask = graph.all_relations
    if bitset.only_bit(mask):
        return 1
    total = 0
    for left in bitset.iter_subsets(mask):
        right = mask ^ left
        if (
            graph.is_connected_set(left)
            and graph.is_connected_set(right)
            and graph.are_connected(left, right)
        ):
            total += brute_force_ordered_trees(
                graph, left
            ) * brute_force_ordered_trees(graph, right)
    return total


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "graph",
        [
            chain_graph(2),
            chain_graph(5),
            cycle_graph(5),
            star_graph(5),
            clique_graph(5),
        ],
        ids=["chain2", "chain5", "cycle5", "star5", "clique5"],
    )
    def test_paper_topologies(self, graph):
        assert count_join_trees(graph) == brute_force_ordered_trees(graph)

    def test_random_graphs(self, rng):
        for _ in range(10):
            graph = random_connected_graph(rng.randint(2, 6), rng, rng.random())
            assert count_join_trees(graph) == brute_force_ordered_trees(graph)


class TestClosedForms:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_clique_matches_closed_form(self, n):
        assert count_join_trees(clique_graph(n)) == clique_tree_count(n)

    def test_clique_tree_count_values(self):
        # (2n-2)!/(n-1)!: 1, 2, 12, 120, 1680 for n = 1..5.
        assert [clique_tree_count(n) for n in range(1, 6)] == [1, 2, 12, 120, 1680]

    def test_chain_small_values(self):
        # Chain of 3: shapes ((a b) c) and (a (b c)) plus mirrors: 6
        # ordered? (R0⨝R1)⨝R2 family: root split {0,1}|{2} and {0}|{1,2}
        # each with 2 orientations and 2 sub-orientations: 8 ordered...
        # ground truth via the brute force:
        assert count_join_trees(chain_graph(3)) == brute_force_ordered_trees(
            chain_graph(3)
        )

    def test_single_relation(self):
        assert count_join_trees(chain_graph(1)) == 1
        assert count_join_trees_unordered(chain_graph(1)) == 1


class TestUnordered:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_unordered_is_ordered_over_orientations(self, n):
        graph = chain_graph(n)
        assert count_join_trees_unordered(graph) == (
            count_join_trees(graph) // 2 ** (n - 1)
        )

    def test_clique4_unordered(self):
        # 4 leaves, all trees allowed: 120 ordered? no - n=4:
        # (2*4-2)!/(4-1)! = 720/6 = 120 ordered; / 2^3 = 15 unordered.
        assert count_join_trees_unordered(clique_graph(4)) == 15


class TestValidationAndSummary:
    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            count_join_trees(QueryGraph(3, [(0, 1)]))

    def test_summary_consistency(self):
        graph = star_graph(5)
        summary = search_space_summary(graph)
        assert isinstance(summary, SearchSpaceSummary)
        assert summary.n_relations == 5
        assert summary.csg == 20
        assert summary.ccp_unordered == 32
        assert summary.trees_ordered == brute_force_ordered_trees(graph)
        assert summary.pruning_power == pytest.approx(
            summary.trees_ordered / summary.ccp_unordered
        )

    def test_clique_dominates_chain(self):
        # Denser graph, more trees.
        assert count_join_trees(clique_graph(6)) > count_join_trees(chain_graph(6))
