"""Unit tests for the closed-form counter formulas (paper §2)."""

from __future__ import annotations

import pytest

from repro.analysis.formulas import (
    ccp_symmetric,
    ccp_unordered,
    csg_count,
    inner_counter_dpsize,
    inner_counter_dpsub,
)
from repro.errors import WorkloadError


class TestValidation:
    def test_unknown_topology(self):
        with pytest.raises(WorkloadError):
            csg_count(5, "hypercube")

    def test_cycle_needs_three(self):
        with pytest.raises(WorkloadError):
            ccp_symmetric(2, "cycle")

    @pytest.mark.parametrize("topology", ["chain", "star", "clique"])
    def test_n1_counters_zero(self, topology):
        assert inner_counter_dpsize(1, topology) == 0
        assert inner_counter_dpsub(1, topology) == 0
        assert ccp_symmetric(1, topology) == 0
        assert ccp_unordered(1, topology) == 0

    @pytest.mark.parametrize("topology", ["chain", "star", "clique"])
    def test_n1_csg_is_one(self, topology):
        assert csg_count(1, topology) == 1


class TestKnownSmallValues:
    """Hand-derivable values, independent of Figure 3."""

    def test_chain_csg(self):
        # Connected subsets of a chain = contiguous runs: n(n+1)/2.
        assert csg_count(4, "chain") == 10

    def test_star_csg(self):
        # n singletons - 1 hub + hub-sets: 2^{n-1} + n - 1.
        assert csg_count(5, "star") == 20

    def test_clique_csg(self):
        assert csg_count(4, "clique") == 15

    def test_cycle_csg(self):
        # Triangle: all 7 non-empty subsets connected.
        assert csg_count(3, "cycle") == 7

    def test_triangle_equals_clique3(self):
        for function in (
            csg_count,
            ccp_symmetric,
            inner_counter_dpsub,
            inner_counter_dpsize,
        ):
            assert function(3, "cycle") == function(3, "clique")

    def test_chain2_everything(self):
        assert ccp_unordered(2, "chain") == 1
        assert inner_counter_dpsub(2, "chain") == 2
        assert inner_counter_dpsize(2, "chain") == 1

    def test_star_ccp_by_hand(self):
        # Star n=5: 4 leaves x 2^3 hub-side subsets = 32 unordered.
        assert ccp_unordered(5, "star") == 32

    def test_triangle_ccp_by_hand(self):
        # 3 singleton-singleton + 3 singleton-edge pairs.
        assert ccp_unordered(3, "cycle") == 6


class TestStructuralProperties:
    @pytest.mark.parametrize("topology", ["chain", "star", "clique"])
    @pytest.mark.parametrize("n", range(2, 15))
    def test_symmetric_is_twice_unordered(self, topology, n):
        assert ccp_symmetric(n, topology) == 2 * ccp_unordered(n, topology)

    @pytest.mark.parametrize("n", range(2, 20))
    def test_chain_below_cycle_below_clique(self, n):
        """Denser graphs have more csg-cmp-pairs."""
        if n >= 3:
            assert ccp_symmetric(n, "chain") < ccp_symmetric(n, "cycle")
            assert ccp_symmetric(n, "cycle") <= ccp_symmetric(n, "clique")

    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_monotone_in_n(self, topology):
        start = 3
        for function in (csg_count, ccp_symmetric, inner_counter_dpsub,
                         inner_counter_dpsize):
            values = [function(n, topology) for n in range(start, 16)]
            assert values == sorted(values)
            assert len(set(values)) == len(values)

    @pytest.mark.parametrize("n", [5, 10, 15, 20])
    def test_dpsub_clique_equals_ccp_symmetric(self, n):
        """On cliques every DPsub inner test succeeds: I = #ccp."""
        assert inner_counter_dpsub(n, "clique") == ccp_symmetric(n, "clique")

    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    @pytest.mark.parametrize("n", [4, 6, 9, 13])
    def test_inner_counters_at_least_unordered_ccp(self, topology, n):
        assert inner_counter_dpsize(n, topology) >= ccp_unordered(n, topology)
        assert inner_counter_dpsub(n, topology) >= ccp_unordered(n, topology)


class TestPaperSection24Claims:
    """The qualitative conclusions of paper §2.4, as assertions."""

    def test_dpsize_beats_dpsub_on_chains(self):
        for n in (10, 15, 20):
            assert inner_counter_dpsize(n, "chain") < inner_counter_dpsub(
                n, "chain"
            )

    def test_dpsize_beats_dpsub_on_cycles(self):
        for n in (10, 15, 20):
            assert inner_counter_dpsize(n, "cycle") < inner_counter_dpsub(
                n, "cycle"
            )

    def test_dpsub_beats_dpsize_on_stars(self):
        for n in (10, 15, 20):
            assert inner_counter_dpsub(n, "star") < inner_counter_dpsize(
                n, "star"
            )

    def test_dpsub_beats_dpsize_on_cliques(self):
        for n in (10, 15, 20):
            assert inner_counter_dpsub(n, "clique") < inner_counter_dpsize(
                n, "clique"
            )

    def test_both_far_from_lower_bound_except_clique_dpsub(self):
        """'Except for clique queries, #ccp is orders of magnitude less.'"""
        for topology in ("chain", "cycle", "star"):
            bound = ccp_unordered(20, topology)
            assert inner_counter_dpsize(20, topology) > 10 * bound
            assert inner_counter_dpsub(20, topology) > 10 * bound
