"""Unit tests for the asymptotic analysis of paper §2.4."""

from __future__ import annotations

import pytest

from repro.analysis.asymptotics import (
    dpsize_overtakes_dpsub_at,
    dpsub_overtakes_dpsize_at,
    growth_table,
    waste_factor,
)
from repro.errors import WorkloadError


class TestCrossovers:
    def test_dpsize_dominates_chains_and_cycles(self):
        """Paper: 'for chain and cycle queries DPsize is highly superior'."""
        assert dpsub_overtakes_dpsize_at("chain") is None
        assert dpsub_overtakes_dpsize_at("cycle") is None
        assert dpsize_overtakes_dpsub_at("chain") is not None
        assert dpsize_overtakes_dpsub_at("cycle") is not None

    def test_dpsub_dominates_stars_and_cliques_eventually(self):
        """Paper: 'for star and clique queries DPsub is highly superior'."""
        star_crossover = dpsub_overtakes_dpsize_at("star")
        clique_crossover = dpsub_overtakes_dpsize_at("clique")
        assert star_crossover is not None
        assert clique_crossover is not None
        # Figure 3 shows DPsub already ahead at n=10 for both.
        assert star_crossover <= 10
        assert clique_crossover <= 10

    def test_crossovers_consistent_with_raw_counters(self):
        from repro.analysis.formulas import (
            inner_counter_dpsize,
            inner_counter_dpsub,
        )

        n = dpsub_overtakes_dpsize_at("star")
        assert n is not None
        assert inner_counter_dpsub(n, "star") < inner_counter_dpsize(n, "star")
        if n > 2:
            assert inner_counter_dpsub(n - 1, "star") >= inner_counter_dpsize(
                n - 1, "star"
            )

    def test_unknown_topology(self):
        with pytest.raises(WorkloadError):
            dpsub_overtakes_dpsize_at("torus")


class TestWasteFactor:
    def test_dpccp_is_one(self):
        assert waste_factor("DPccp", "star", 15) == 1.0

    def test_clique_dpsub_is_exactly_two(self):
        """On cliques every DPsub test succeeds; the only 'waste' is
        visiting both orientations: InnerCounter = #ccp symmetric."""
        for n in (5, 10, 15):
            assert waste_factor("DPsub", "clique", n) == pytest.approx(2.0)

    def test_orders_of_magnitude_elsewhere(self):
        """Paper §2.4: both algorithms far from the bound at n=20."""
        for topology in ("chain", "cycle", "star"):
            assert waste_factor("DPsize", topology, 20) > 10
            assert waste_factor("DPsub", topology, 20) > 10

    def test_trivial_case(self):
        assert waste_factor("DPsize", "chain", 1) == 1.0

    def test_unknown_algorithm(self):
        with pytest.raises(WorkloadError):
            waste_factor("DPmagic", "chain", 5)


class TestGrowth:
    def test_star_growth_separation(self):
        """DPsize quadruples per relation on stars; #ccp only doubles."""
        rows = growth_table("star", (18, 19, 20))
        for row in rows:
            assert row.dpsize_growth == pytest.approx(4.0, rel=0.1)
            assert row.ccp_growth == pytest.approx(2.0, rel=0.1)
            assert row.dpsub_growth == pytest.approx(3.0, rel=0.1)

    def test_clique_growth_separation(self):
        rows = growth_table("clique", (18, 19, 20))
        for row in rows:
            assert row.dpsize_growth == pytest.approx(4.0, rel=0.1)
            assert row.dpsub_growth == pytest.approx(3.0, rel=0.1)
            assert row.ccp_growth == pytest.approx(3.0, rel=0.1)

    def test_chain_growth_is_polynomial(self):
        """Chain counters grow sub-geometrically for DPsize, 2x for DPsub."""
        rows = growth_table("chain", (19, 20))
        for row in rows:
            assert row.dpsize_growth < 1.5
            assert row.dpsub_growth == pytest.approx(2.0, rel=0.1)

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            growth_table("cycle", (3,))
