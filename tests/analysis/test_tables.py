"""The decisive reproduction test: formulas regenerate Figure 3 exactly."""

from __future__ import annotations

import pytest

from repro.analysis.tables import (
    FIGURE3_PAPER_VALUES,
    Figure3Row,
    figure3_row,
    figure3_table,
)


class TestFigure3:
    @pytest.mark.parametrize(
        "key", sorted(FIGURE3_PAPER_VALUES), ids=lambda key: f"{key[0]}-{key[1]}"
    )
    def test_every_printed_cell_regenerated(self, key):
        topology, n = key
        assert figure3_row(topology, n) == FIGURE3_PAPER_VALUES[key]

    def test_full_table_shape(self):
        table = figure3_table()
        assert len(table) == 20
        assert all(isinstance(row, Figure3Row) for row in table)

    def test_custom_sizes(self):
        table = figure3_table(sizes=(3, 4), topologies=("chain",))
        assert [(row.topology, row.n) for row in table] == [
            ("chain", 3),
            ("chain", 4),
        ]

    def test_largest_cells_digit_for_digit(self):
        """The most error-prone cells of the paper's table."""
        star20 = figure3_row("star", 20)
        assert star20.dpsize == 59_892_991_338
        assert star20.dpsub == 2_323_474_358
        clique20 = figure3_row("clique", 20)
        assert clique20.dpsize == 309_338_182_241
        assert clique20.ccp == 1_742_343_625
