"""Concurrency hammer tests for PlanService (ISSUE satellite).

Eight client threads drive a 70 %-repeated workload concurrently; the
service must stay exception-free, achieve a hit-rate above 0.5, and a
deliberately tiny deadline must degrade to the greedy fallback instead
of erroring.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.catalog.synthetic import random_catalog
from repro.graph.generators import star_graph
from repro.plans.visitors import validate_plan
from repro.service import PlanService

N_THREADS = 8
REQUESTS_PER_THREAD = 25
UNIQUE_QUERIES = 15  # 8*25=200 requests over 15 queries => ~92% repeats
N_RELATIONS = 8


def build_pool(seed: int = 0):
    instances = []
    for index in range(UNIQUE_QUERIES):
        rng = random.Random(seed + index)
        instances.append(
            (star_graph(N_RELATIONS, rng=rng), random_catalog(N_RELATIONS, rng))
        )
    return instances


class TestHammer:
    def test_eight_threads_shared_cache(self):
        pool = build_pool()
        errors: list[BaseException] = []
        responses = []
        responses_lock = threading.Lock()

        with PlanService(cache_capacity=64, workers=4) as service:

            def client(thread_index: int) -> None:
                rng = random.Random(1000 + thread_index)
                try:
                    for _ in range(REQUESTS_PER_THREAD):
                        graph, catalog = pool[rng.randrange(UNIQUE_QUERIES)]
                        response = service.plan(graph, catalog)
                        validate_plan(response.plan, graph)
                        with responses_lock:
                            responses.append(response)
                except BaseException as error:  # noqa: BLE001 - collected for assert
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(index,))
                for index in range(N_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

            stats = service.cache_stats()

        assert not errors, errors
        assert len(responses) == N_THREADS * REQUESTS_PER_THREAD
        assert not any(response.degraded for response in responses)
        assert stats.hit_rate > 0.5, stats
        # every distinct query was optimized at most once (stampede guard):
        # misses cannot exceed the unique pool size
        assert stats.misses <= UNIQUE_QUERIES

    def test_identical_concurrent_queries_coalesce(self):
        rng = random.Random(77)
        graph = star_graph(10, rng=rng)
        catalog = random_catalog(10, rng)
        barrier = threading.Barrier(N_THREADS)
        errors: list[BaseException] = []
        responses = []
        lock = threading.Lock()

        with PlanService(cache_capacity=16, workers=2) as service:

            def client() -> None:
                try:
                    barrier.wait(timeout=30)
                    response = service.plan(graph, catalog)
                    with lock:
                        responses.append(response)
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=client) for _ in range(N_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stats = service.cache_stats()

        assert not errors, errors
        assert len(responses) == N_THREADS
        assert stats.misses == 1  # one leader, everyone else coalesced or hit
        assert len({response.cost for response in responses}) == 1

    def test_tiny_deadline_degrades_under_concurrency(self):
        # large instances: the DP cannot finish within the 1 us deadline
        rng = random.Random(500)
        pool = [
            (star_graph(13, rng=rng), random_catalog(13, rng))
            for _ in range(UNIQUE_QUERIES)
        ]
        errors: list[BaseException] = []
        responses = []
        lock = threading.Lock()

        with PlanService(cache_capacity=64, workers=2) as service:

            def client(thread_index: int) -> None:
                rng = random.Random(thread_index)
                try:
                    for _ in range(5):
                        graph, catalog = pool[rng.randrange(UNIQUE_QUERIES)]
                        response = service.plan(
                            graph, catalog, deadline_seconds=1e-6
                        )
                        validate_plan(response.plan, graph)
                        with lock:
                            responses.append(response)
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(index,)) for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

        assert not errors, errors
        assert len(responses) == 40
        degraded = [response for response in responses if response.degraded]
        assert degraded, "a 1 microsecond deadline must force degradation"
        # The ladder serves every degraded request from an explicit
        # rung: LinDP for these exact-routed sizes, rank-2 when a
        # ranked entry was already cached, GOO as the terminal rung.
        assert all(
            response.ladder_rung in ("rank-2", "lindp", "goo")
            for response in degraded
        )
        assert all(
            "(degraded)" in response.algorithm or response.plan_rank == 2
            for response in degraded
        )


@pytest.mark.slow
class TestSustainedLoad:
    def test_many_rounds_stable(self):
        pool = build_pool(seed=900)
        with PlanService(cache_capacity=8, workers=4) as service:
            rng = random.Random(1)
            for _ in range(300):
                graph, catalog = pool[rng.randrange(UNIQUE_QUERIES)]
                response = service.plan(graph, catalog)
                validate_plan(response.plan, graph)
            stats = service.cache_stats()
        # capacity 8 < 15 unique queries: evictions must have happened
        # and the service must have stayed consistent throughout
        assert stats.evictions > 0
        assert stats.hits > 0
