"""Unit tests for the LRU + TTL plan cache and its stampede guard."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service.plancache import PlanCache


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasics:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_rejects_bad_config(self):
        with pytest.raises(ServiceError):
            PlanCache(capacity=0)
        with pytest.raises(ServiceError):
            PlanCache(capacity=1, ttl_seconds=0)
        with pytest.raises(ServiceError):
            PlanCache(capacity=1).put("k", None)

    def test_contains_and_len(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_clear_keeps_counters(self):
        cache = PlanCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        assert cache.stats().hits == 1


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes a
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        assert cache.stats().expirations == 1

    def test_reinsert_restarts_ttl(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(8.0)
        cache.put("a", 2)
        clock.advance(8.0)
        assert cache.get("a") == 2


class TestStampedeGuard:
    def test_get_or_compute_computes_once(self):
        cache = PlanCache(capacity=4)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == 42 and cache.get_or_compute("k", lambda: 99) == 42
        assert len(calls) == 1

    def test_failing_factory_propagates_and_caches_nothing(self):
        cache = PlanCache(capacity=4)
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", self._boom)
        assert cache.get("k") is None
        # a later factory succeeds: the key is not poisoned
        assert cache.get_or_compute("k", lambda: 7) == 7

    @staticmethod
    def _boom():
        raise RuntimeError("factory failed")

    def test_concurrent_misses_coalesce(self):
        cache = PlanCache(capacity=4)
        release = threading.Event()
        calls = []

        def slow_factory():
            calls.append(1)
            release.wait(timeout=5)
            return "value"

        results = []

        def worker():
            results.append(cache.get_or_compute("k", slow_factory))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        # let every thread reach the cache before releasing the leader
        deadline = time.monotonic() + 5.0
        while cache.stats().coalesced < 5 and time.monotonic() < deadline:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert results == ["value"] * 6
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.coalesced == 5

    def test_get_or_join_protocol(self):
        cache = PlanCache(capacity=4)
        status, future = cache.get_or_join("k")
        assert status == "leader"
        status2, future2 = cache.get_or_join("k")
        assert status2 == "follower" and future2 is future
        cache.fulfill("k", 5)
        assert future.result(timeout=1) == 5
        status3, value = cache.get_or_join("k")
        assert (status3, value) == ("hit", 5)

    def test_abandon_wakes_followers_with_error(self):
        cache = PlanCache(capacity=4)
        cache.get_or_join("k")
        _, future = cache.get_or_join("k")
        cache.abandon("k")
        with pytest.raises(ServiceError):
            future.result(timeout=1)
        # the key is free for a new leader
        status, _ = cache.get_or_join("k")
        assert status == "leader"


class TestExpiredSweep:
    """Expired entries must not occupy capacity or skew the counters."""

    def test_expired_entries_swept_before_live_evictions(self):
        clock = FakeClock()
        cache = PlanCache(capacity=2, ttl_seconds=10.0, clock=clock)
        cache.put("old", 1)
        clock.advance(5.0)
        cache.put("live", 2)
        clock.advance(6.0)  # "old" expired, "live" has 4s left
        cache.put("fresh", 3)  # over capacity: sweep "old", keep "live"
        assert cache.get("live") == 2
        assert cache.get("fresh") == 3
        stats = cache.stats()
        assert stats.evictions == 0
        assert stats.expirations == 1

    def test_eviction_only_counts_live_entries(self):
        clock = FakeClock()
        cache = PlanCache(capacity=2, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # nothing expired: a genuine LRU eviction
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.expirations == 0

    def test_len_and_stats_size_count_live_entries_only(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(10.1)
        cache.put("c", 3)
        assert len(cache) == 1
        assert cache.stats().size == 1
        assert cache.stats().expirations == 2

    def test_contains_drops_expired_entry(self):
        clock = FakeClock()
        cache = PlanCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(10.1)
        assert "a" not in cache
        assert cache.stats().expirations == 1
        assert len(cache) == 0
