"""ShardedPlanCache and the consistent-hash ring.

The sharded facade must be observably identical to a single-lock
``PlanCache`` for every operation (the service swaps one in without
knowing), while the ring must place keys deterministically (persistence
and multi-process deployments agree), spread them evenly, and remap
only ``~1/n`` of the key space when the shard count changes.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.errors import ServiceError
from repro.service.plancache import PlanCache
from repro.service.sharding import DEFAULT_SHARDS, HashRing, ShardedPlanCache

KEYS = [f"dpccp:fp{index:06d}" for index in range(4000)]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------


def test_ring_is_deterministic_across_instances() -> None:
    # No per-process salt: two independently built rings agree on every
    # key, which is what lets a persisted snapshot reload into the
    # shard that will serve it.
    first, second = HashRing(8), HashRing(8)
    assert [first.shard_of(key) for key in KEYS] == [
        second.shard_of(key) for key in KEYS
    ]


def test_ring_covers_and_balances_shards() -> None:
    ring = HashRing(8)
    placement = Counter(ring.shard_of(key) for key in KEYS)
    assert sorted(placement) == list(range(8))  # every shard owns keys
    # 64 vnodes/shard keeps the arcs tight; allow generous slack so the
    # test pins the mechanism, not one SHA-1 accident.
    expected = len(KEYS) / 8
    assert max(placement.values()) < 2.0 * expected
    assert min(placement.values()) > 0.35 * expected


def test_ring_resize_remaps_a_minority_of_keys() -> None:
    # Consistent hashing's defining property: growing 8 -> 9 shards
    # moves ~1/9 of keys, not ~8/9 like `hash(key) % n` would.
    before, after = HashRing(8), HashRing(9)
    moved = sum(
        before.shard_of(key) != after.shard_of(key) for key in KEYS
    )
    assert moved / len(KEYS) < 0.35


def test_ring_rejects_bad_configuration() -> None:
    with pytest.raises(ServiceError):
        HashRing(0)
    with pytest.raises(ServiceError):
        HashRing(4, vnodes=0)


# ----------------------------------------------------------------------
# PlanCache-compatible surface
# ----------------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 3, DEFAULT_SHARDS])
def test_put_get_contains_len_items(shards: int) -> None:
    cache = ShardedPlanCache(shards=shards, capacity=256)
    for key in KEYS[:100]:
        cache.put(key, ("plan", key))
    assert len(cache) == 100
    for key in KEYS[:100]:
        assert key in cache
        assert cache.get(key) == ("plan", key)
    assert cache.get("never:seen") is None
    assert sorted(cache.items()) == sorted(
        (key, ("plan", key)) for key in KEYS[:100]
    )
    cache.clear()
    assert len(cache) == 0


def test_routing_is_stable_and_shard_local() -> None:
    cache = ShardedPlanCache(shards=4, capacity=64)
    placement = {key: cache.shard_of(key) for key in KEYS[:200]}
    # Same facade, same answer every time.
    assert placement == {key: cache.shard_of(key) for key in KEYS[:200]}
    # And it matches a bare ring with the same shard count.
    ring = HashRing(4)
    assert placement == {key: ring.shard_of(key) for key in KEYS[:200]}


def test_stampede_guard_is_shard_local() -> None:
    cache = ShardedPlanCache(shards=4, capacity=64)
    status, future = cache.get_or_join("k1")
    assert status == "leader"
    status, joined = cache.get_or_join("k1")
    assert status == "follower" and joined is future
    cache.fulfill("k1", "v1")
    assert future.result(timeout=1) == "v1"
    assert cache.get_or_join("k1") == ("hit", "v1")

    status, future = cache.get_or_join("k2")
    assert status == "leader"
    cache.abandon("k2", RuntimeError("boom"))
    with pytest.raises(RuntimeError):
        future.result(timeout=1)


def test_get_or_compute_coalesces_within_a_shard() -> None:
    cache = ShardedPlanCache(shards=4, capacity=64)
    calls = Counter()
    gate = threading.Barrier(8)

    def compute() -> str:
        calls["factory"] += 1
        return "value"

    def worker() -> None:
        gate.wait()
        assert cache.get_or_compute("hot:key", compute) == "value"

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert calls["factory"] == 1
    stats = cache.stats()
    assert stats.misses == 1
    assert stats.hits + stats.coalesced == 7


def test_ttl_and_stale_tier_per_shard() -> None:
    clock = FakeClock()
    cache = ShardedPlanCache(
        shards=4, capacity=64, ttl_seconds=10.0, clock=clock
    )
    for key in KEYS[:20]:
        cache.put(key, ("plan", key))
    clock.advance(11.0)
    # Expired entries are misses for normal lookups...
    assert cache.get(KEYS[0]) is None
    # ...but the degraded path can still peek them, shard-locally.
    for key in KEYS[:20]:
        assert cache.peek_stale(key) == ("stale", ("plan", key))
    stats = cache.stats()
    assert stats.stale_served == 20
    assert stats.stale_size == 20
    # A fresh put supersedes the parked copy.
    cache.put(KEYS[0], ("fresh", KEYS[0]))
    assert cache.peek_stale(KEYS[0]) == ("fresh", ("fresh", KEYS[0]))


def test_capacity_is_divided_but_aggregate_bound_holds() -> None:
    cache = ShardedPlanCache(shards=4, capacity=100)
    for key in KEYS[:1000]:
        cache.put(key, key)
    # Per-shard bound is ceil(100/4)=25, so the facade holds at most
    # 4*25 entries no matter how skewed the ring placement is.
    assert len(cache) <= 100
    assert cache.stats().capacity == 100
    assert cache.stats().evictions >= 900


def test_rejects_bad_configuration() -> None:
    with pytest.raises(ServiceError):
        ShardedPlanCache(shards=0)
    with pytest.raises(ServiceError):
        ShardedPlanCache(shards=4, capacity=0)


def test_single_shard_matches_plain_plancache_counters() -> None:
    # shards=1 is the documented single-lock baseline: identical
    # stats trajectory to a bare PlanCache for the same op sequence.
    plain = PlanCache(capacity=8)
    facade = ShardedPlanCache(shards=1, capacity=8)
    for target in (plain, facade):
        for key in KEYS[:12]:  # forces 4 evictions
            target.put(key, key)
        for key in KEYS[:12]:
            target.get(key)
        target.get("missing")
    assert plain.stats() == facade.stats()


# ----------------------------------------------------------------------
# Aggregate stats
# ----------------------------------------------------------------------


def test_shard_stats_sum_to_aggregate() -> None:
    cache = ShardedPlanCache(shards=4, capacity=400)
    for key in KEYS[:300]:
        cache.put(key, key)
    for key in KEYS[:150]:
        cache.get(key)
    cache.get("missing:1"), cache.get("missing:2")
    per_shard = cache.shard_stats()
    total = cache.stats()
    assert len(per_shard) == 4
    for field in ("hits", "misses", "size", "evictions", "expirations"):
        assert getattr(total, field) == sum(
            getattr(stat, field) for stat in per_shard
        )
    assert total.hits == 150
    assert total.misses == 2
    assert total.size == 300


def test_aggregate_stats_quiescent_consistency_under_threads() -> None:
    # Weak consistency is the documented trade *during* concurrent
    # operation; once the hammer stops, the sums must be exact.
    cache = ShardedPlanCache(shards=4, capacity=1024)
    for key in KEYS[:256]:
        cache.put(key, key)
    gate = threading.Barrier(8)

    def worker(index: int) -> None:
        gate.wait()
        for step in range(2000):
            cache.get(KEYS[(index * 37 + step) % 256])

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = cache.stats()
    assert stats.hits == 8 * 2000
    assert stats.misses == 0
    assert stats.size == 256
