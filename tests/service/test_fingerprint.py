"""Unit tests for canonical fingerprints."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.errors import GraphError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    graph_for_topology,
    random_connected_graph,
    star_graph,
)
from repro.graph.querygraph import JoinEdge, QueryGraph
from repro.service.fingerprint import compute_fingerprint, quantize


def shuffled_twin(graph, catalog, seed):
    """The same instance under a random relabeling."""
    rng = random.Random(seed)
    permutation = list(range(graph.n_relations))
    rng.shuffle(permutation)
    return graph.relabelled(permutation), catalog.relabelled(permutation)


class TestQuantize:
    def test_keeps_significant_digits(self):
        assert quantize(123456.0, 3) == 123000.0
        assert quantize(0.012345, 3) == 0.0123

    def test_merges_noise(self):
        assert quantize(10001.7, 3) == quantize(10000.0, 3)


class TestStability:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_relabeling_preserves_key(self, topology):
        rng = random.Random(42)
        graph = graph_for_topology(topology, 8, rng=rng)
        catalog = random_catalog(8, rng)
        reference = compute_fingerprint(graph, catalog)
        for seed in range(10):
            twin_graph, twin_catalog = shuffled_twin(graph, catalog, seed)
            twin = compute_fingerprint(twin_graph, twin_catalog)
            assert twin.key == reference.key

    def test_relabeling_preserves_key_random_graphs(self):
        for seed in range(20):
            rng = random.Random(seed)
            n = rng.randrange(2, 11)
            graph = random_connected_graph(n, rng, rng.random())
            catalog = random_catalog(n, rng)
            reference = compute_fingerprint(graph, catalog)
            twin_graph, twin_catalog = shuffled_twin(graph, catalog, seed + 1000)
            assert compute_fingerprint(twin_graph, twin_catalog).key == reference.key

    def test_key_is_deterministic(self):
        graph = star_graph(6, selectivity=0.1)
        catalog = random_catalog(6, 3)
        assert (
            compute_fingerprint(graph, catalog).key
            == compute_fingerprint(graph, catalog).key
        )

    def test_names_do_not_matter(self):
        edges = [(0, 1, 0.1), (1, 2, 0.2)]
        plain = QueryGraph(3, edges)
        named = QueryGraph(3, edges, names=["orders", "customer", "nation"])
        catalog = random_catalog(3, 1)
        assert (
            compute_fingerprint(plain, catalog).key
            == compute_fingerprint(named, catalog).key
        )


class TestDiscrimination:
    def test_different_shapes_differ(self):
        catalog = random_catalog(6, 5)
        keys = {
            compute_fingerprint(g, catalog).key
            for g in (
                chain_graph(6, selectivity=0.1),
                cycle_graph(6, selectivity=0.1),
                star_graph(6, selectivity=0.1),
                clique_graph(6, selectivity=0.1),
            )
        }
        assert len(keys) == 4

    def test_different_selectivities_differ(self):
        catalog = random_catalog(5, 5)
        a = compute_fingerprint(chain_graph(5, selectivity=0.1), catalog)
        b = compute_fingerprint(chain_graph(5, selectivity=0.4), catalog)
        assert a.key != b.key

    def test_different_cardinalities_differ(self):
        graph = chain_graph(5, selectivity=0.1)
        a = compute_fingerprint(graph, random_catalog(5, 1))
        b = compute_fingerprint(graph, random_catalog(5, 2))
        assert a.key != b.key

    def test_quantization_merges_near_identical_stats(self):
        graph = chain_graph(3, selectivity=0.1)
        from repro.catalog.catalog import Catalog

        a = Catalog.from_cardinalities([10000.0, 500.0, 70.0])
        b = Catalog.from_cardinalities([10001.7, 500.2, 70.01])
        assert (
            compute_fingerprint(graph, a).key == compute_fingerprint(graph, b).key
        )

    def test_catalog_none_is_sound(self):
        graph = star_graph(5, selectivity=0.2)
        with_stats = compute_fingerprint(graph, random_catalog(5, 1))
        without = compute_fingerprint(graph, None)
        assert with_stats.key != without.key


class TestMappings:
    def test_permutations_are_inverses(self):
        rng = random.Random(9)
        graph = random_connected_graph(7, rng, 0.3)
        fingerprint = compute_fingerprint(graph, random_catalog(7, rng))
        for canonical, requested in enumerate(fingerprint.old_of_new):
            assert fingerprint.new_of_old[requested] == canonical

    def test_canonical_instance_is_isomorphic(self):
        rng = random.Random(5)
        graph = random_connected_graph(6, rng, 0.5)
        catalog = random_catalog(6, rng)
        fingerprint = compute_fingerprint(graph, catalog)
        canonical_graph, canonical_catalog = fingerprint.canonical_instance(
            graph, catalog
        )
        assert canonical_graph.n_relations == graph.n_relations
        assert len(canonical_graph.edges) == len(graph.edges)
        # per-relation stats follow their relation through the permutation
        for old_index in range(graph.n_relations):
            new_index = fingerprint.new_of_old[old_index]
            assert canonical_catalog.cardinality(new_index) == pytest.approx(
                catalog.cardinality(old_index)
            )

    def test_disconnected_graph_rejected(self):
        graph = QueryGraph(4, [(0, 1, 0.1), (2, 3, 0.1)])
        with pytest.raises(GraphError):
            compute_fingerprint(graph, None)
