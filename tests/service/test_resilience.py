"""Service-level resilience: crashes degrade, deadlines are budgets.

The acceptance battery for the fault-tolerance layer:

* the chaos test SIGKILLs live worker processes under a 32-query mixed
  batch and requires 32 valid responses plus a healed pool;
* the deadline regression pins that ``deadline_seconds`` is a
  wall-clock *request* budget — time burned before the optimizer wait
  (fingerprinting, cache lookups) shrinks the wait;
* leader failures surface as degraded responses (for the leader and
  for every follower coalesced onto it), never as raw exceptions;
* one failing batch group cannot destroy the rest of the batch.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import make_algorithm
from repro.graph.generators import graph_for_topology
from repro.parallel.worker import worker_pid
from repro.plans.visitors import validate_plan
from repro.service import PlanRequest, PlanService


def make_instance(topology, n, seed):
    rng = random.Random(seed)
    graph = graph_for_topology(topology, n, rng=rng)
    return graph, random_catalog(n, rng)


class TestErrorDegradation:
    def test_leader_failure_degrades_not_raises(self):
        graph, catalog = make_instance("star", 8, 3)
        with PlanService(workers=2) as service:
            def failing(request, fingerprint, algorithm, deadline_at=None):
                raise RuntimeError("simulated optimizer crash")

            service._optimize_canonical = failing
            response = service.plan(graph, catalog)
            assert response.degraded
            assert response.error is not None
            assert "simulated optimizer crash" in response.error
            validate_plan(response.plan, graph)
            assert service.metrics.counter("error_fallbacks").value == 1
            assert service.metrics.counter("errors").value == 1  # abandoned job

    def test_followers_of_failed_leader_get_degraded_plans(self):
        graph, catalog = make_instance("star", 8, 4)
        with PlanService(workers=2) as service:
            release = threading.Event()
            entered = threading.Event()

            def failing(request, fingerprint, algorithm, deadline_at=None):
                entered.set()
                release.wait(timeout=10.0)
                raise RuntimeError("leader died")

            service._optimize_canonical = failing
            responses = []

            def submit():
                responses.append(service.plan(graph, catalog))

            leader = threading.Thread(target=submit)
            leader.start()
            assert entered.wait(timeout=10.0)
            follower = threading.Thread(target=submit)
            follower.start()
            time.sleep(0.1)  # let the follower join the in-flight future
            release.set()
            leader.join(timeout=30.0)
            follower.join(timeout=30.0)
            assert len(responses) == 2
            for response in responses:
                assert response.degraded
                assert response.error is not None and "leader died" in response.error
                validate_plan(response.plan, graph)
            assert service.cache_stats().coalesced == 1

    def test_error_response_not_cached(self):
        graph, catalog = make_instance("star", 7, 5)
        with PlanService(workers=2) as service:
            calls = []
            original = PlanService._optimize_canonical

            def flaky(request, fingerprint, algorithm, deadline_at=None):
                calls.append(algorithm)
                if len(calls) == 1:
                    raise RuntimeError("transient")
                return original(
                    service, request, fingerprint, algorithm, deadline_at
                )

            service._optimize_canonical = flaky
            first = service.plan(graph, catalog)
            assert first.degraded and first.error is not None
            second = service.plan(graph, catalog)
            assert not second.degraded and not second.cache_hit
            direct = make_algorithm("adaptive").optimize(graph, catalog=catalog)
            assert second.cost == pytest.approx(direct.cost)


class TestDeadlineBudget:
    def test_deadline_counts_time_before_the_wait(self):
        """Budget burned on cache lookup shrinks the optimizer wait.

        The cache lookup is patched to burn most of the 0.6 s budget;
        the pre-fix service then waited the *full* deadline again on
        the optimizer future (~1.1 s total floor). With the remaining-
        budget fix the request degrades at ~0.6 s wall clock.
        """
        graph, catalog = make_instance("clique", 12, 6)
        with PlanService(algorithm="dpsub", workers=2) as service:
            original = service._cache.get_or_join

            def slow_lookup(key):
                time.sleep(0.5)
                return original(key)

            service._cache.get_or_join = slow_lookup
            started = time.perf_counter()
            response = service.plan(graph, catalog, deadline_seconds=0.6)
            elapsed = time.perf_counter() - started
            assert response.degraded
            assert response.error is None  # deadline, not failure
            # ~0.5 burn + ~0.1 remaining wait + fast fallback; the old
            # full-deadline wait could not finish under ~1.1 s.
            assert elapsed < 0.95
            validate_plan(response.plan, graph)

    def test_expired_budget_degrades_immediately(self):
        graph, catalog = make_instance("clique", 12, 7)
        with PlanService(algorithm="dpsub", workers=2) as service:
            original = service._cache.get_or_join

            def slow_lookup(key):
                time.sleep(0.25)
                return original(key)

            service._cache.get_or_join = slow_lookup
            started = time.perf_counter()
            response = service.plan(graph, catalog, deadline_seconds=0.2)
            elapsed = time.perf_counter() - started
            assert response.degraded
            assert elapsed < 0.6


class TestBatchIsolation:
    def test_one_failing_group_does_not_destroy_the_batch(self):
        good_a = make_instance("star", 8, 11)
        bad = make_instance("star", 8, 12)
        good_b = make_instance("chain", 9, 13)
        with PlanService(workers=2) as service:
            poison_key = service.fingerprint_of(*bad).key
            original = service.plan_prepared

            def selective(request, fingerprint):
                if fingerprint.key == poison_key:
                    raise RuntimeError("group down")
                return original(request, fingerprint)

            service.plan_prepared = selective
            requests = [
                PlanRequest(*good_a),
                PlanRequest(*bad),
                PlanRequest(*good_b),
                PlanRequest(*bad),  # follower of the failing group
                PlanRequest(*good_a),  # follower of a healthy group
            ]
            responses = service.plan_batch(requests)
            assert len(responses) == len(requests)
            for index in (1, 3):
                assert responses[index].degraded
                assert responses[index].error is not None
                assert "group down" in responses[index].error
                validate_plan(responses[index].plan, requests[index].graph)
            for index in (0, 2, 4):
                assert not responses[index].degraded
                assert responses[index].error is None
            assert (
                service.metrics.counter("batch_group_failures").value >= 1
            )


class TestChaosBattery:
    """The ISSUE's acceptance chaos test, verbatim."""

    def test_killing_workers_mid_batch_degrades_gracefully(self):
        specs = []
        for index in range(32):
            topology = ("clique", "cycle", "star", "chain")[index % 4]
            n = (11, 13, 12, 14)[index % 4]
            specs.append(make_instance(topology, n, 100 + index))
        requests = [PlanRequest(graph, catalog) for graph, catalog in specs]

        with PlanService(algorithm="dpsub", workers=4, jobs=4) as service:
            pool = service._process_pool
            pids = {pool.submit(worker_pid, token).result() for token in range(8)}
            assert pids

            def killer():
                time.sleep(0.3)
                for pid in sorted(pids)[:2]:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass

            thread = threading.Thread(target=killer)
            thread.start()
            responses = service.plan_batch(requests)
            thread.join()

            assert len(responses) == 32
            for response, request in zip(responses, requests):
                validate_plan(response.plan, request.graph)
            counters = service.instrumentation.counters
            assert counters.value("pool.faults") >= 1
            assert counters.value("pool.respawns") >= 1
            assert service.snapshot()["resilience"]["pool_respawns"] >= 1
            # Every non-degraded response is the exact optimum.
            for response, (graph, catalog) in list(zip(responses, specs))[:8]:
                if not response.degraded:
                    direct = make_algorithm("dpsub").optimize(
                        graph, catalog=catalog
                    )
                    assert response.cost == pytest.approx(direct.cost)

            # The *next* batch on the same service succeeds, no restart.
            follow_up = [
                PlanRequest(*make_instance("star", 10, 200 + index))
                for index in range(4)
            ]
            second = service.plan_batch(follow_up)
            assert len(second) == 4
            for response, request in zip(second, follow_up):
                assert not response.degraded
                assert response.error is None
                validate_plan(response.plan, request.graph)
