"""Service-side escalation-ladder tests: rung-labelled degradation.

A deadline-expired request must be answered by stepping *down* the
ladder — cached rank-2, then LinDP (only where the routed rung was
exact), then GOO — and every degraded response must say which rung
served it (``PlanResponse.ladder_rung``), so "silently degrade" is
structurally impossible.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.errors import ServiceError
from repro.graph.generators import chain_graph, star_graph
from repro.plans.visitors import validate_plan
from repro.service import PlanService

TINY = 1e-9  # expired before optimization starts


def exact_routed_instance(n=13, seed=11):
    """A star the ladder routes at the exact rung (star ceiling 14)."""
    rng = random.Random(seed)
    return star_graph(n, rng=rng), random_catalog(n, rng)


def lindp_routed_instance(n=120, seed=11):
    """A chain routed at the lindp rung (past the chain ceiling 22)."""
    rng = random.Random(seed)
    return chain_graph(n, rng=rng), random_catalog(n, rng)


class TestLadderDegradation:
    def test_exact_routed_degrades_to_lindp(self):
        graph, catalog = exact_routed_instance()
        with PlanService(workers=1) as service:
            response = service.plan(graph, catalog, deadline_seconds=TINY)
        assert response.degraded
        assert response.ladder_rung == "lindp"
        assert "LinDP" in response.algorithm
        assert "(degraded)" in response.algorithm
        validate_plan(response.plan, graph)

    def test_lindp_routed_skips_to_goo(self):
        # The routed rung already was lindp: re-running it under a
        # burnt deadline would repeat the work that just timed out.
        graph, catalog = lindp_routed_instance()
        with PlanService(workers=1) as service:
            response = service.plan(graph, catalog, deadline_seconds=TINY)
        assert response.degraded
        assert response.ladder_rung == "goo"
        assert "GOO" in response.algorithm
        validate_plan(response.plan, graph)

    def test_undegraded_response_has_no_rung(self):
        graph, catalog = exact_routed_instance(n=6)
        with PlanService(workers=1) as service:
            response = service.plan(graph, catalog)
        assert not response.degraded
        assert response.ladder_rung is None

    def test_pinned_fallback_still_works(self):
        graph, catalog = exact_routed_instance()
        with PlanService(workers=1, fallback="goo") as service:
            assert service.fallback == "goo"
            response = service.plan(graph, catalog, deadline_seconds=TINY)
        assert response.degraded
        assert response.ladder_rung == "goo"
        assert "GOO" in response.algorithm

    def test_unknown_fallback_rejected(self):
        with pytest.raises(ServiceError):
            PlanService(fallback="ikkbz")

    def test_degraded_cost_never_below_direct_exact(self):
        """The rung plan is honest: a real plan for the real query."""
        graph, catalog = exact_routed_instance(n=10, seed=3)
        with PlanService(workers=1) as service:
            degraded = service.plan(graph, catalog, deadline_seconds=TINY)
        with PlanService(workers=1) as service:
            exact = service.plan(graph, catalog)
        assert degraded.cost >= exact.cost / (1 + 1e-9)


class TestLadderSnapshot:
    def test_snapshot_reports_rung_counters(self):
        graph, catalog = exact_routed_instance()
        big_graph, big_catalog = lindp_routed_instance()
        with PlanService(workers=1) as service:
            service.plan(graph, catalog, deadline_seconds=TINY)
            service.plan(big_graph, big_catalog, deadline_seconds=TINY)
            snapshot = service.snapshot()
        ladder = snapshot["ladder"]
        assert ladder["fallback"] == "ladder"
        assert ladder["degraded_rungs"]["lindp"] == 1
        assert ladder["degraded_rungs"]["goo"] == 1
        assert ladder["degraded_rungs"]["rank-2"] == 0

    def test_snapshot_reports_pinned_fallback(self):
        with PlanService(workers=1, fallback="quickpick") as service:
            snapshot = service.snapshot()
        assert snapshot["ladder"]["fallback"] == "quickpick"
