"""Unit tests for service metrics."""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
    render_snapshot,
)


class TestCounter:
    def test_increment(self):
        counter = Counter()
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_thread_safety(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.increment()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestHistogram:
    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_percentiles(self):
        histogram = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms
            histogram.observe(ms / 1000.0)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert 45 <= summary["p50_ms"] <= 55
        assert 90 <= summary["p95_ms"] <= 99
        assert 95 <= summary["p99_ms"] <= 100
        assert summary["min_ms"] == 1.0
        assert summary["max_ms"] == 100.0
        assert summary["mean_ms"] == pytest.approx(50.5)

    def test_window_bounds_memory(self):
        histogram = LatencyHistogram(window=10)
        for value in range(100):
            histogram.observe(value)
        assert histogram.count == 100
        assert len(histogram._samples) == 10


class TestRegistry:
    def test_instruments_are_singletons_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("requests").increment(3)
        registry.histogram("latency").observe(0.010)
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"]["requests"] == 3
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["histograms"]["latency"]["p99_ms"] == 10.0

    def test_render_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("requests").increment()
        registry.histogram("latency").observe(0.002)
        text = render_snapshot(registry.snapshot())
        assert "requests" in text
        assert "p99_ms" in text

    def test_render_empty_snapshot(self):
        assert "no metrics" in render_snapshot(MetricsRegistry().snapshot())

    def test_render_cache_section(self):
        snapshot = {"cache": {"hits": 1, "hit_rate": 0.5}}
        text = render_snapshot(snapshot)
        assert "plan cache" in text
        assert "0.500" in text
