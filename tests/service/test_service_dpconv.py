"""PlanService with the DPconv strategy: selection, deadlines, caching.

DPconv enters the service the same way every enumerator does — through
the ``ALGORITHMS`` registry — so these tests pin the integration
surface the ISSUE names: the strategy is selectable per request and as
the service default, adaptive-routed dense queries actually run it,
deadline pressure still degrades to the polynomial fallbacks, and
cache fingerprints of dpconv-planned queries hit across relabeled
twins.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import DPconv, make_algorithm, optimize
from repro.graph.generators import clique_graph
from repro.plans.visitors import validate_plan
from repro.service import PlanService


def make_dense_instance(n=8, seed=7):
    rng = random.Random(seed)
    graph = clique_graph(n, rng=rng)
    return graph, random_catalog(n, rng)


class TestSelection:
    def test_dpconv_selectable_per_request(self):
        with PlanService(workers=1) as service:
            graph, catalog = make_dense_instance(n=7)
            response = service.plan(graph, catalog, algorithm="dpconv")
            assert response.algorithm == "DPconv"
            direct = DPconv().optimize(graph, catalog=catalog)
            assert response.cost == pytest.approx(direct.cost)
            validate_plan(response.plan, graph)

    def test_dpconv_as_service_default(self):
        with PlanService(workers=1, algorithm="dpconv") as service:
            graph, catalog = make_dense_instance(n=6, seed=3)
            response = service.plan(graph, catalog)
            assert response.algorithm == "DPconv"
            assert not response.degraded

    def test_adaptive_routes_dense_queries_to_dpconv(self):
        """The service's default strategy reaches DPconv on cliques."""
        with PlanService(workers=1) as service:
            graph, catalog = make_dense_instance(n=8, seed=5)
            response = service.plan(graph, catalog)
            assert response.algorithm == "adaptive->DPconv"
            direct = optimize(graph, catalog=catalog, algorithm="adaptive")
            assert response.cost == pytest.approx(direct.cost)

    def test_registry_constructs_dpconv(self):
        engine = make_algorithm("dpconv")
        assert isinstance(engine, DPconv)
        assert engine.name == "DPconv"


class TestDeadlines:
    def test_tiny_deadline_degrades_not_crashes(self):
        with PlanService(workers=1) as service:
            graph, catalog = make_dense_instance(n=12, seed=1)
            response = service.plan(
                graph, catalog, algorithm="dpconv", deadline_seconds=1e-6
            )
            assert response.degraded
            assert "degraded" in response.algorithm
            validate_plan(response.plan, graph)

    def test_generous_deadline_runs_dpconv_exactly(self):
        with PlanService(workers=1) as service:
            graph, catalog = make_dense_instance(n=7, seed=2)
            response = service.plan(
                graph, catalog, algorithm="dpconv", deadline_seconds=30.0
            )
            assert not response.degraded
            assert response.algorithm == "DPconv"


class TestCacheFingerprints:
    def test_repeat_request_hits_cache(self):
        with PlanService(workers=1, cache_capacity=64) as service:
            graph, catalog = make_dense_instance(n=7, seed=9)
            first = service.plan(graph, catalog, algorithm="dpconv")
            second = service.plan(graph, catalog, algorithm="dpconv")
            assert not first.cache_hit
            assert second.cache_hit
            assert second.cost == first.cost
            assert second.fingerprint_key == first.fingerprint_key

    def test_relabeled_twin_hits_dpconv_entry(self):
        """WL/canonical fingerprints are algorithm-agnostic: a dpconv
        plan cached for a query serves its relabeled twin, remapped."""
        n = 7
        with PlanService(workers=1, cache_capacity=64) as service:
            graph, catalog = make_dense_instance(n=n, seed=11)
            service.plan(graph, catalog, algorithm="dpconv")
            permutation = list(range(n))
            random.Random(4).shuffle(permutation)
            twin_graph = graph.relabelled(permutation)
            twin_catalog = catalog.relabelled(permutation)
            response = service.plan(
                twin_graph, twin_catalog, algorithm="dpconv"
            )
            assert response.cache_hit
            validate_plan(response.plan, twin_graph)
            direct = DPconv().optimize(twin_graph, catalog=twin_catalog)
            assert response.cost == pytest.approx(direct.cost)

    def test_dpconv_entries_not_shared_with_other_algorithms(self):
        with PlanService(workers=1, cache_capacity=64) as service:
            graph, catalog = make_dense_instance(n=6, seed=13)
            service.plan(graph, catalog, algorithm="dpconv")
            other = service.plan(graph, catalog, algorithm="dpsub")
            assert not other.cache_hit
