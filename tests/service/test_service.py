"""Unit tests for PlanService: caching, remapping, deadlines, lifecycle."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import optimize
from repro.errors import ServiceError
from repro.graph.generators import random_connected_graph, star_graph
from repro.plans.visitors import validate_plan
from repro.service import PlanRequest, PlanService


@pytest.fixture
def service():
    with PlanService(cache_capacity=128, workers=2) as svc:
        yield svc


def make_instance(n=8, seed=7, topology="star"):
    rng = random.Random(seed)
    if topology == "star":
        graph = star_graph(n, rng=rng)
    else:
        graph = random_connected_graph(n, rng, 0.3)
    return graph, random_catalog(n, rng)


class TestPlanning:
    def test_plan_matches_direct_optimization(self, service):
        graph, catalog = make_instance()
        response = service.plan(graph, catalog)
        direct = optimize(graph, catalog=catalog, algorithm="adaptive")
        assert response.cost == pytest.approx(direct.cost)
        assert not response.cache_hit
        assert not response.degraded
        validate_plan(response.plan, graph)

    def test_second_request_hits_cache(self, service):
        graph, catalog = make_instance()
        first = service.plan(graph, catalog)
        second = service.plan(graph, catalog)
        assert second.cache_hit
        assert second.cost == first.cost  # exact: same cached entry
        assert second.fingerprint_key == first.fingerprint_key

    def test_isomorphic_request_hits_and_is_remapped(self, service):
        graph, catalog = make_instance(n=7)
        service.plan(graph, catalog)
        permutation = list(range(7))
        random.Random(3).shuffle(permutation)
        twin_graph = graph.relabelled(permutation)
        twin_catalog = catalog.relabelled(permutation)
        response = service.plan(twin_graph, twin_catalog)
        assert response.cache_hit
        # the returned plan must be valid for the *twin's* numbering
        validate_plan(response.plan, twin_graph)
        direct = optimize(twin_graph, catalog=twin_catalog, algorithm="adaptive")
        assert response.cost == pytest.approx(direct.cost)

    def test_algorithms_do_not_share_entries(self, service):
        graph, catalog = make_instance(n=6)
        exact = service.plan(graph, catalog, algorithm="dpccp")
        greedy = service.plan(graph, catalog, algorithm="goo")
        assert not greedy.cache_hit
        assert greedy.cost >= exact.cost - 1e-9

    def test_single_relation_query(self, service):
        graph, catalog = make_instance(n=1)
        response = service.plan(graph, catalog)
        assert response.plan.is_leaf

    def test_plain_graph_without_catalog(self, service):
        graph, _ = make_instance(n=5)
        response = service.plan(graph)
        assert response.plan.size == 5


class TestDeadlines:
    def test_tiny_deadline_degrades_not_crashes(self, service):
        graph, catalog = make_instance(n=13, seed=1)
        response = service.plan(graph, catalog, deadline_seconds=1e-6)
        assert response.degraded
        assert "degraded" in response.algorithm
        validate_plan(response.plan, graph)

    def test_degraded_result_is_not_cached_but_background_fills(self, service):
        graph, catalog = make_instance(n=13, seed=2)
        degraded = service.plan(graph, catalog, deadline_seconds=1e-6)
        assert degraded.degraded
        # wait for the background optimization to land, then expect a hit
        import time

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            response = service.plan(graph, catalog, deadline_seconds=5.0)
            if response.cache_hit and not response.degraded:
                break
            time.sleep(0.01)
        assert response.cache_hit and not response.degraded

    def test_generous_deadline_returns_exact_plan(self, service):
        graph, catalog = make_instance(n=6)
        response = service.plan(graph, catalog, deadline_seconds=30.0)
        assert not response.degraded
        direct = optimize(graph, catalog=catalog, algorithm="adaptive")
        assert response.cost == pytest.approx(direct.cost)

    def test_default_deadline_from_config(self):
        with PlanService(workers=1, default_deadline_seconds=1e-6) as svc:
            graph, catalog = make_instance(n=13, seed=3)
            assert svc.plan(graph, catalog).degraded


class TestConfigAndLifecycle:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ServiceError):
            PlanService(algorithm="nope")

    def test_rejects_exponential_fallback(self):
        with pytest.raises(ServiceError):
            PlanService(fallback="dpccp")

    def test_rejects_bad_workers(self):
        with pytest.raises(ServiceError):
            PlanService(workers=0)

    def test_rejects_unknown_algorithm_per_request(self, service):
        graph, catalog = make_instance(n=4)
        with pytest.raises(ServiceError):
            service.plan(graph, catalog, algorithm="nope")

    def test_closed_service_refuses_requests(self):
        service = PlanService(workers=1)
        service.close()
        graph, catalog = make_instance(n=4)
        with pytest.raises(ServiceError):
            service.plan(graph, catalog)

    def test_submit_request_refuses_after_close(self):
        service = PlanService(workers=1)
        service.close()
        graph, catalog = make_instance(n=4)
        with pytest.raises(ServiceError):
            service.submit_request(PlanRequest(graph=graph, catalog=catalog))
        assert service._front_door is None

    def test_submit_request_close_race_does_not_revive_front_door(self):
        # Deterministic interleaving of the submit/close race: the first
        # _closed check sees an open service, close() completes before
        # the front-door lock is taken, and the re-check under the lock
        # must refuse instead of lazily creating a fresh executor on
        # the closed service (which would leak its threads forever).
        service = PlanService(workers=1)
        graph, catalog = make_instance(n=4)
        real_is_set = service._closed.is_set
        state = {"first": True}

        def racing_is_set():
            if state["first"]:
                state["first"] = False
                service.close()
                return False  # the pre-close snapshot the caller saw
            return real_is_set()

        service._closed.is_set = racing_is_set
        try:
            with pytest.raises(ServiceError):
                service.submit_request(
                    PlanRequest(graph=graph, catalog=catalog)
                )
        finally:
            del service._closed.is_set
        assert service._front_door is None

    def test_snapshot_contains_cache_and_latency(self, service):
        graph, catalog = make_instance(n=5)
        service.plan(graph, catalog)
        service.plan(graph, catalog)
        snapshot = service.snapshot()
        assert snapshot["cache"]["hits"] >= 1
        assert snapshot["counters"]["requests"] == 2
        assert snapshot["histograms"]["plan_latency"]["count"] == 2
        stats = service.cache_stats()
        assert stats.hit_rate > 0


class TestBatch:
    def test_batch_deduplicates_identical_fingerprints(self, service):
        graph, catalog = make_instance(n=7, seed=5)
        requests = [PlanRequest(graph=graph, catalog=catalog) for _ in range(10)]
        responses = service.plan_batch(requests)
        assert len(responses) == 10
        # exactly one optimization ran
        assert service.cache_stats().misses == 1
        costs = {response.cost for response in responses}
        assert len(costs) == 1
        assert sum(not response.cache_hit for response in responses) == 1
        snapshot = service.snapshot()
        assert snapshot["counters"]["batch_deduplicated"] == 9

    def test_batch_with_relabelled_duplicates(self, service):
        graph, catalog = make_instance(n=6, seed=8)
        requests = []
        for seed in range(6):
            permutation = list(range(6))
            random.Random(seed).shuffle(permutation)
            requests.append(
                PlanRequest(
                    graph=graph.relabelled(permutation),
                    catalog=catalog.relabelled(permutation),
                )
            )
        responses = service.plan_batch(requests)
        assert service.cache_stats().misses == 1
        for request, response in zip(requests, responses):
            validate_plan(response.plan, request.graph)

    def test_batch_preserves_request_order(self, service):
        instances = [make_instance(n=5, seed=seed) for seed in range(4)]
        requests = [
            PlanRequest(graph=graph, catalog=catalog)
            for graph, catalog in instances
        ]
        responses = service.plan_batch(requests)
        for (graph, catalog), response in zip(instances, responses):
            direct = optimize(graph, catalog=catalog, algorithm="adaptive")
            assert response.cost == pytest.approx(direct.cost)

    def test_empty_batch(self, service):
        assert service.plan_batch([]) == []
