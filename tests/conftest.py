"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    star_graph,
)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG; reseeded per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(params=["chain", "cycle", "star", "clique"])
def paper_topology(request: pytest.FixtureRequest) -> str:
    """Each of the paper's four topologies in turn."""
    return request.param


def graph_of(topology: str, n: int, selectivity: float | None = None):
    """Build a paper-topology graph, degrading 2-cycles to chains."""
    if topology == "cycle" and n < 3:
        topology = "chain"
    builders = {
        "chain": chain_graph,
        "cycle": cycle_graph,
        "star": star_graph,
        "clique": clique_graph,
    }
    return builders[topology](n, selectivity=selectivity)
