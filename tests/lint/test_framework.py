"""Framework mechanics: pragmas, registration, loading, findings."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import all_rules, load_module, registered_codes, run_lint
from repro.lint.findings import (
    ADVICE,
    ERROR,
    WARNING,
    Finding,
    severity_rank,
)
from repro.lint.framework import Rule, register
from repro.lint.pragmas import collect_pragmas


class TestPragmas:
    def test_line_pragma_targets_its_line(self) -> None:
        pragmas = collect_pragmas(
            ["x = 1", "y = 2  # lint: ignore[DET001]", "z = 3"]
        )
        assert pragmas.suppresses("DET001", 2)
        assert not pragmas.suppresses("DET001", 1)
        assert not pragmas.suppresses("DET001", 3)
        assert not pragmas.suppresses("CONC001", 2)

    def test_multiple_codes_and_spacing(self) -> None:
        pragmas = collect_pragmas(["q()  # lint: ignore[DET001, CONC001]"])
        assert pragmas.suppresses("DET001", 1)
        assert pragmas.suppresses("CONC001", 1)
        assert not pragmas.suppresses("COST001", 1)

    def test_wildcard_pragma(self) -> None:
        pragmas = collect_pragmas(["q()  # lint: ignore[*]"])
        assert pragmas.suppresses("ANYTHING", 1)

    def test_file_pragma_covers_every_line(self) -> None:
        pragmas = collect_pragmas(
            ["# lint: ignore-file[OBS001]", "a = 1", "b = 2"]
        )
        assert pragmas.suppresses("OBS001", 1)
        assert pragmas.suppresses("OBS001", 3)
        assert not pragmas.suppresses("DET001", 2)


class TestRegistry:
    def test_all_rules_sorted_and_unique(self) -> None:
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        assert tuple(codes) == registered_codes()

    def test_duplicate_code_rejected(self) -> None:
        class Duplicate(Rule):
            code = "DET001"
            name = "imposter"
            severity = ERROR
            description = "duplicate"
            invariant = "none"
            include = ("*",)

            def check(self, module):  # pragma: no cover - never runs
                return iter(())

        with pytest.raises(LintError, match="DET001"):
            register(Duplicate)

    def test_bad_severity_rejected(self) -> None:
        class BadSeverity(Rule):
            code = "ZZZ999"
            name = "bad-severity"
            severity = "fatal"
            description = "bad"
            invariant = "none"
            include = ("*",)

            def check(self, module):  # pragma: no cover - never runs
                return iter(())

        with pytest.raises(LintError, match="severity"):
            register(BadSeverity)


class TestLoadModule:
    def test_syntax_error_raises_lint_error(self, tmp_path: Path) -> None:
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        with pytest.raises(LintError, match="broken.py"):
            load_module(bad)

    def test_missing_file_raises_lint_error(self, tmp_path: Path) -> None:
        with pytest.raises(LintError):
            load_module(tmp_path / "absent.py")


class TestFindings:
    def test_severity_order(self) -> None:
        assert severity_rank(ADVICE) < severity_rank(WARNING)
        assert severity_rank(WARNING) < severity_rank(ERROR)
        with pytest.raises(LintError):
            severity_rank("nope")

    def test_as_dict_round_trip(self) -> None:
        finding = Finding(
            rule="DET001",
            path="src/repro/core/x.py",
            line=3,
            column=4,
            severity=ERROR,
            message="msg",
            snippet="for x in s:",
        )
        payload = finding.as_dict()
        assert payload["rule"] == "DET001"
        assert payload["line"] == 3
        assert finding.identity == ("DET001", "src/repro/core/x.py", "for x in s:")


class TestRunner:
    def test_directory_scan_is_deterministic(self) -> None:
        fixtures = Path(__file__).resolve().parent / "fixtures"
        first = run_lint([fixtures])
        second = run_lint([fixtures])
        assert [f.identity for f in first.findings] == [
            f.identity for f in second.findings
        ]
        assert first.files_checked == second.files_checked

    def test_gate_thresholds(self) -> None:
        fixtures = Path(__file__).resolve().parent / "fixtures"
        result = run_lint([fixtures])
        assert not result.gate("advice")
        assert not result.gate("error")  # corpus contains DET001 errors
        assert result.gate("never")
