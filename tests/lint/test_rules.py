"""Every rule against its fixture corpus: true positives fire, true
negatives stay silent, pragmas suppress.

Each case pins the *snippets* a rule must flag (content, not line
numbers, so fixture edits elsewhere don't invalidate the test) and
asserts the paired ``*_good.py`` fixture produces nothing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

from tests.lint.conftest import FIXTURES, rule_by_code

#: code -> (bad fixtures, good fixtures, expected flagged snippet
#: fragments, expected suppressed count)
RULE_CASES = {
    "ASYNC001": (
        ["repro/server/async_bad.py"],
        ["repro/server/async_good.py"],
        [
            "time.sleep(0.01)",
            "value = future.result()",
            "executor.submit(print, value).result()",
            "_lock.acquire()",
            "return future.result()",
        ],
        1,
    ),
    "DET001": (
        ["repro/core/det_bad.py", "repro/core/pragma_file.py"],
        ["repro/core/det_good.py"],
        ["for mask in plans", "listed = list(masks)", "doubled = [m * 2"],
        3,  # one line pragma + two under the file-scope pragma
    ),
    "DET002": (
        ["repro/core/det_bad.py"],
        ["repro/core/det_good.py"],
        ["next(iter(masks))", "masks.pop()"],
        0,
    ),
    "CONC001": (
        ["repro/service/conc_bad.py"],
        ["repro/service/conc_good.py"],
        ["future.result()", "time.sleep(0.01)", "pool.submit("],
        1,
    ),
    "CONC002": (
        ["repro/parallel/conc_state_bad.py"],
        ["repro/parallel/conc_state_good.py"],
        ["_REGISTRY[name] = value", "_QUEUE.append(name)"],
        0,
    ),
    "COST001": (
        ["repro/core/cost_bad.py"],
        ["repro/core/cost_good.py"],
        ["result.cost == reference.cost", "result.total_cost !="],
        1,
    ),
    "COST002": (
        ["repro/core/cost_bad.py"],
        ["repro/core/cost_good.py"],
        [
            "operator = cost_model.separable_join_operator",
            'getattr(cost_model, "separable_join_operator", None)',
        ],
        0,
    ),
    "OBS001": (
        ["repro/hyper/obs_bad.py"],
        ["repro/hyper/obs_good.py"],
        ['obs.count("enumerator.pairs")', "obs.observe("],
        1,
    ),
    "API001": (
        ["repro/api_bad.py", "repro/api_missing_all.py"],
        ["repro/api_good.py"],
        ["__all__ ="] * 3 + ['"""API001 true positive'],
        0,
    ),
    "API002": (
        ["repro/api_wildcard_bad.py"],
        ["repro/api_good.py"],
        ["from os.path import *"],
        0,
    ),
    "TYPE001": (
        ["repro/typing_bad.py"],
        ["repro/typing_good.py"],
        ["def public_no_annotation(x):", "def method_no_annotation(self):"],
        1,
    ),
}


def _paths(relative: list[str]) -> list[Path]:
    return [FIXTURES / rel for rel in relative]


@pytest.mark.parametrize("code", sorted(RULE_CASES))
def test_rule_fires_on_bad_fixture(code: str) -> None:
    bad, _good, fragments, _suppressed = RULE_CASES[code]
    result = run_lint(_paths(bad), rules=[rule_by_code(code)])
    snippets = [finding.snippet for finding in result.findings]
    assert len(snippets) == len(fragments), snippets
    for fragment in fragments:
        assert any(fragment in snippet for snippet in snippets), (
            fragment,
            snippets,
        )
    for finding in result.findings:
        assert finding.rule == code
        assert finding.severity == rule_by_code(code).severity
        assert finding.line > 0 and finding.message


@pytest.mark.parametrize("code", sorted(RULE_CASES))
def test_rule_silent_on_good_fixture(code: str) -> None:
    _bad, good, _fragments, _suppressed = RULE_CASES[code]
    result = run_lint(_paths(good), rules=[rule_by_code(code)])
    assert result.findings == [], [f.snippet for f in result.findings]


@pytest.mark.parametrize("code", sorted(RULE_CASES))
def test_pragma_suppression_counts(code: str) -> None:
    bad, _good, _fragments, suppressed = RULE_CASES[code]
    result = run_lint(_paths(bad), rules=[rule_by_code(code)])
    assert len(result.suppressed) == suppressed, [
        f.snippet for f in result.suppressed
    ]


def test_every_registered_rule_has_a_fixture_case() -> None:
    from repro.lint import registered_codes

    assert set(registered_codes()) == set(RULE_CASES)


def test_rule_scoping_excludes_out_of_scope_paths(tmp_path: Path) -> None:
    # The same DET001-triggering source outside a determinism-critical
    # directory produces nothing: scope is part of the rule.
    out_of_scope = tmp_path / "repro" / "bench" / "free.py"
    out_of_scope.parent.mkdir(parents=True)
    out_of_scope.write_text(
        "def f(masks: set[int]) -> list[int]:\n"
        "    return [m for m in masks]\n",
        encoding="utf-8",
    )
    result = run_lint([out_of_scope], rules=[rule_by_code("DET001")])
    assert result.findings == []
