"""The ``repro-joinorder lint`` subcommand: formats, gating, baseline
workflow, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import registered_codes

from tests.lint.conftest import FIXTURES

DET_BAD = str(FIXTURES / "repro" / "core" / "det_bad.py")
DET_GOOD = str(FIXTURES / "repro" / "core" / "det_good.py")


def test_clean_tree_exits_zero(capsys: pytest.CaptureFixture) -> None:
    code = main(["lint", DET_GOOD, "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 finding(s)" in out


def test_findings_fail_the_gate(capsys: pytest.CaptureFixture) -> None:
    code = main(["lint", DET_BAD, "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET001" in out and "DET002" in out


def test_fail_on_never_reports_but_passes(
    capsys: pytest.CaptureFixture,
) -> None:
    code = main(["lint", DET_BAD, "--no-baseline", "--fail-on", "never"])
    out = capsys.readouterr().out
    assert code == 0
    assert "DET001" in out


def test_json_format_is_machine_readable(
    capsys: pytest.CaptureFixture,
) -> None:
    code = main(["lint", DET_BAD, "--no-baseline", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    rules = {finding["rule"] for finding in payload["findings"]}
    assert {"DET001", "DET002"} <= rules
    assert payload["files_checked"] == 1


def test_rule_subset_filter(capsys: pytest.CaptureFixture) -> None:
    code = main(
        ["lint", DET_BAD, "--no-baseline", "--rules", "DET002",
         "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {f["rule"] for f in payload["findings"]} == {"DET002"}


def test_unknown_rule_code_is_a_usage_error(
    capsys: pytest.CaptureFixture,
) -> None:
    code = main(["lint", DET_BAD, "--rules", "NOPE001"])
    err = capsys.readouterr().err
    assert code == 2
    assert "NOPE001" in err


def test_list_rules_catalog(capsys: pytest.CaptureFixture) -> None:
    code = main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_code in registered_codes():
        assert rule_code in out
    assert "invariant:" in out


def test_write_baseline_then_rescan_clean(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    baseline = tmp_path / "baseline.json"
    code = main(
        ["lint", DET_BAD, "--write-baseline", str(baseline)]
    )
    assert code == 0
    document = json.loads(baseline.read_text(encoding="utf-8"))
    assert document["entries"], "baseline should capture the findings"
    assert all(
        entry["justification"].startswith("TODO")
        for entry in document["entries"]
    )
    capsys.readouterr()
    rescan = main(["lint", DET_BAD, "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert rescan == 0
    assert "0 finding(s)" in out


def test_missing_baseline_file_is_not_an_error(
    tmp_path: Path, capsys: pytest.CaptureFixture
) -> None:
    # The default baseline path simply may not exist (fresh checkout
    # of a clean tree); that must not crash the command.
    code = main(
        ["lint", DET_GOOD, "--baseline", str(tmp_path / "absent.json")]
    )
    assert code == 0
