"""Shared paths and helpers for the lint test battery."""

from __future__ import annotations

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC_REPRO = REPO_ROOT / "src" / "repro"
BASELINE_FILE = REPO_ROOT / "LINT_BASELINE.json"


@pytest.fixture()
def fixtures_root() -> Path:
    return FIXTURES


def rule_by_code(code: str):
    """The registered rule instance with ``code``."""
    from repro.lint import all_rules

    for rule in all_rules():
        if rule.code == code:
            return rule
    raise LookupError(code)
