"""Baseline semantics: content-anchored matching, staleness, schema."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import load_baseline, run_lint, write_baseline
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import ERROR, Finding

from tests.lint.conftest import FIXTURES, rule_by_code


def _finding(path: str = "src/repro/core/x.py", snippet: str = "s.pop()") -> Finding:
    return Finding(
        rule="DET002",
        path=path,
        line=10,
        column=0,
        severity=ERROR,
        message="msg",
        snippet=snippet,
    )


class TestMatching:
    def test_content_match_ignores_line_numbers(self) -> None:
        entry = BaselineEntry(
            rule="DET002",
            path="src/repro/core/x.py",
            snippet="s.pop()",
            justification="because",
        )
        moved = _finding()
        assert entry.matches(moved)  # entry carries no line at all

    def test_path_suffix_matches_on_segment_boundary(self) -> None:
        entry = BaselineEntry(
            rule="DET002", path="core/x.py", snippet="s.pop()", justification="j"
        )
        assert entry.matches(_finding(path="src/repro/core/x.py"))
        assert not entry.matches(_finding(path="src/repro/hardcore/x.py"))

    def test_snippet_change_resurfaces_finding(self) -> None:
        entry = BaselineEntry(
            rule="DET002",
            path="src/repro/core/x.py",
            snippet="s.pop()",
            justification="j",
        )
        assert not entry.matches(_finding(snippet="t.pop()"))

    def test_stale_entries_reported(self) -> None:
        matching = BaselineEntry(
            rule="DET002",
            path="src/repro/core/x.py",
            snippet="s.pop()",
            justification="j",
        )
        stale = BaselineEntry(
            rule="DET001", path="gone.py", snippet="for x in s:", justification="j"
        )
        baseline = Baseline([matching, stale])
        assert baseline.absorbs(_finding())
        assert baseline.stale_entries() == [stale]


class TestDocuments:
    def test_write_then_load_round_trip(self, tmp_path: Path) -> None:
        result = run_lint(
            [FIXTURES / "repro/core/det_bad.py"],
            rules=[rule_by_code("DET002")],
        )
        assert result.findings
        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(baseline_path, result.findings)
        assert count == len(result.findings)
        baseline = load_baseline(baseline_path)
        rerun = run_lint(
            [FIXTURES / "repro/core/det_bad.py"],
            rules=[rule_by_code("DET002")],
            baseline=baseline,
        )
        assert rerun.findings == []
        assert len(rerun.baselined) == count
        assert rerun.stale_baseline == []

    def test_empty_justification_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "DET001",
                            "path": "x.py",
                            "snippet": "s",
                            "justification": "  ",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(LintError, match="justification"):
            load_baseline(path)

    def test_missing_field_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"version": 1, "entries": [{"rule": "DET001"}]}),
            encoding="utf-8",
        )
        with pytest.raises(LintError, match="missing field"):
            load_baseline(path)

    def test_wrong_version_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps({"version": 99, "entries": []}), encoding="utf-8"
        )
        with pytest.raises(LintError, match="version"):
            load_baseline(path)

    def test_invalid_json_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "b.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(LintError, match="JSON"):
            load_baseline(path)
