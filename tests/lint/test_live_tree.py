"""The meta-test: the shipped source tree is lint-clean modulo the
committed baseline, and the baseline itself carries no dead weight.

This is the local enforcement of the CI static-analysis gate — the
linter's rules are only worth their fixtures if the code they were
written for actually satisfies them.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.lint import load_baseline, run_lint

from tests.lint.conftest import BASELINE_FILE, REPO_ROOT, SRC_REPRO


def test_src_repro_is_clean_modulo_baseline() -> None:
    baseline = (
        load_baseline(BASELINE_FILE) if BASELINE_FILE.exists() else None
    )
    result = run_lint([SRC_REPRO], baseline=baseline, root=REPO_ROOT)
    assert result.findings == [], "\n".join(
        f"{f.location}: [{f.rule}] {f.message}" for f in result.findings
    )


def test_baseline_has_no_stale_entries() -> None:
    if not BASELINE_FILE.exists():
        pytest.skip("no committed baseline")
    baseline = load_baseline(BASELINE_FILE)
    result = run_lint([SRC_REPRO], baseline=baseline, root=REPO_ROOT)
    assert result.stale_baseline == [], [
        entry.as_dict() for entry in result.stale_baseline
    ]


def test_baseline_justifications_are_real() -> None:
    if not BASELINE_FILE.exists():
        pytest.skip("no committed baseline")
    document = json.loads(BASELINE_FILE.read_text(encoding="utf-8"))
    for entry in document["entries"]:
        justification = entry["justification"]
        assert len(justification) > 20, entry
        assert not justification.startswith("TODO"), entry


def test_no_error_severity_findings_even_without_baseline() -> None:
    # The baseline may grandfather warnings, never invariant errors:
    # determinism- and concurrency-class findings must be fixed, not
    # suppressed.
    result = run_lint([SRC_REPRO], root=REPO_ROOT)
    errors = [f for f in result.findings if f.severity == "error"]
    assert errors == [], "\n".join(f.location for f in errors)


def test_mypy_gate_if_available() -> None:
    pytest.importorskip("mypy", reason="mypy runs in CI's static-analysis job")
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
