"""API001/API002 true negatives."""

from os import path

__all__ = ["exists"]


def exists() -> bool:
    return path.exists(".")
