"""API001 true positives: __all__ drift."""

__all__ = ["exists", "exists", "missing_name", 42]


def exists() -> None:
    return None
