"""CONC002 true negatives: import-time-frozen registry, instance state."""

_FROZEN = {"a": 1, "b": 2}  # populated at import time, read-only after


def lookup(name: str) -> int:
    return _FROZEN.get(name, 0)


class Cache:
    """Mutable state lives on instances, not the module."""

    def __init__(self) -> None:
        self.entries: dict[str, int] = {}

    def put(self, name: str, value: int) -> None:
        self.entries[name] = value
