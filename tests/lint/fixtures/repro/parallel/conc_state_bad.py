"""CONC002 true positives: module-level containers mutated at runtime."""

_REGISTRY: dict[str, int] = {}
_QUEUE = []


def register(name: str, value: int) -> None:
    _REGISTRY[name] = value  # CONC002: subscript assignment
    _QUEUE.append(name)  # CONC002: mutator method
