"""API001 true positive: defines names but declares no __all__."""


def orphan() -> None:
    return None
