"""OBS001 true positives: ungated obs calls inside enumeration loops."""


def enumerate_pairs(obs, pairs):
    total = 0
    for left, right in pairs:
        obs.count("enumerator.pairs")  # OBS001: per-candidate obs call
        obs.observe("enumerator.pair_seconds", 0.0)  # OBS001
        total += 1
    while total:
        total -= 1
        obs.count("enumerator.drain")  # lint: ignore[OBS001]
    return total
