"""OBS001 true negatives: gated calls, once-per-run publication."""


def enumerate_gated(obs, pairs):
    total = 0
    for left, right in pairs:
        total += 1
        if obs.enabled:  # gate sanctions the call
            obs.count("enumerator.pairs")
    obs.count("enumerator.total", total)  # outside the loop: fine
    return total


def plain_counters(counters, pairs):
    for left, right in pairs:
        counters.inner += 1  # plain-int accumulation, not an obs call
    return counters
