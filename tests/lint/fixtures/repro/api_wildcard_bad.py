"""API002 true positive."""

from os.path import *  # noqa: F403

__all__ = []
