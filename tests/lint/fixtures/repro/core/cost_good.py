"""COST001/COST002 true negatives."""

import math


def verified(result, reference) -> bool:
    if result.cost is None:  # None comparison is exempt
        return False
    if result.status == "ok":  # string comparison is exempt
        return math.isclose(result.cost, reference.cost)
    return False


def fully_gated(cost_model, plans):
    operator = getattr(cost_model, "separable_join_operator", None)
    if operator is not None and cost_model.symmetric:
        return [operator(p) for p in plans]
    return plans
