"""DET001/DET002 true negatives: bitset ints, membership-only sets,
sorted iteration."""

__all__ = ["enumerate_masks"]


def enumerate_masks(n: int) -> list[int]:
    seen: set[int] = set()
    out: list[int] = []
    for mask in range(1, 1 << n):  # int loop, not a set
        low = mask & -mask  # bitset algebra on plain ints
        if low not in seen:  # membership test only
            seen.add(low)
            out.append(low)
    for mask in sorted(seen):  # sorted() makes the order total
        out.append(mask)
    return out
