"""COST001/COST002 true positives."""


def pick(result, reference) -> bool:
    if result.cost == reference.cost:  # COST001: exact float equality
        return True
    return result.total_cost != reference.total_cost  # COST001


def contracted(result, reference) -> bool:
    return result.cost == reference.cost  # lint: ignore[COST001]


def half_gated_symmetry(cost_model, plans):
    operator = cost_model.separable_join_operator
    if operator is not None:  # COST002: missing cost_model.symmetric
        return [operator(p) for p in plans]
    return plans


def half_gated_none(cost_model):
    operator = getattr(cost_model, "separable_join_operator", None)
    if cost_model.symmetric:  # COST002: missing `is not None` check
        return operator
    return None
