"""DET001/DET002 true positives: unordered set consumption."""

__all__ = ["merge"]


def merge(plans: set[int]) -> list[int]:
    out: list[int] = []
    for mask in plans:  # DET001: for-loop over a set
        out.append(mask)
    masks = {m for m in out}
    listed = list(masks)  # DET001: list() over a set
    doubled = [m * 2 for m in masks]  # DET001: comprehension over a set
    first = next(iter(masks))  # DET002: arbitrary element
    popped = masks.pop()  # DET002: arbitrary element
    allowed = [m for m in masks]  # lint: ignore[DET001]
    return listed + doubled + [first, popped] + allowed
