# lint: ignore-file[DET001]
"""File-scope pragma: every DET001 below is deliberately suppressed."""


def all_iteration(masks: set[int]) -> list[int]:
    return [m for m in masks] + list(masks)
