"""CONC001 true negatives: compute under the lock, block outside."""

import threading

_lock = threading.Lock()


def compute_then_block(future, waiters):
    with _lock:
        pending = list(waiters)
    return future.result()  # outside the lock: fine


def string_join(parts):
    with _lock:
        return ", ".join(parts)  # str.join is not a thread join
