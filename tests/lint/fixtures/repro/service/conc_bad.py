"""CONC001 true positives: blocking while a lock is held."""

import threading
import time

_lock = threading.Lock()


def hold_and_block(pool, future):
    with _lock:
        value = future.result()  # CONC001: Future.result under lock
        time.sleep(0.01)  # CONC001: sleep under lock
        pool.submit(print, value)  # CONC001: pool dispatch under lock
    return value


def suppressed(future):
    with _lock:
        return future.result()  # lint: ignore[CONC001]
