"""ASYNC001 true positives: blocking calls on the event loop."""

import threading
import time

_lock = threading.Lock()


async def handle(executor, future):
    time.sleep(0.01)  # ASYNC001: freezes the loop
    value = future.result()  # ASYNC001: blocking wait on a future
    other = executor.submit(print, value).result()  # ASYNC001: submit+result
    _lock.acquire()  # ASYNC001: untimed lock acquisition
    return other


async def nested_async(future):
    async def inner():
        return future.result()  # ASYNC001: still a coroutine body

    return await inner()


async def suppressed(future):
    return future.result()  # lint: ignore[ASYNC001]
