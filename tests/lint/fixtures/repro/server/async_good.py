"""ASYNC001 true negatives: loop-safe waiting and bounded blocking."""

import asyncio
import threading
import time

_lock = threading.Lock()


async def handle(loop, executor, future):
    await asyncio.sleep(0.01)  # asyncio.sleep is not time.sleep
    value = await asyncio.wrap_future(future)  # the non-blocking wait
    other = await loop.run_in_executor(executor, work)  # blocking work offloaded
    if _lock.acquire(timeout=0.5):  # bounded acquisition
        _lock.release()
    if _lock.acquire(blocking=False):  # non-blocking acquisition
        _lock.release()
    return value, other


def work(future):
    # A plain function may block — it runs on an executor thread, and
    # nested sync defs inside coroutines are callbacks, not loop code.
    time.sleep(0.01)
    return future.result()


async def with_callback(future):
    def on_done(finished):
        return finished.result()  # done-callback runs off the await path

    future.add_done_callback(on_done)
    return await asyncio.wrap_future(future)
