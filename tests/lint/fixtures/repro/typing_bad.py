"""TYPE001 true positives: public callables without return annotations."""

__all__ = ["public_no_annotation", "Thing"]


def public_no_annotation(x):  # TYPE001
    return x


class Thing:
    def method_no_annotation(self):  # TYPE001
        return 1

    def tolerated(self):  # lint: ignore[TYPE001]
        return 2
