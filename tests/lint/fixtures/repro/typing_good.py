"""TYPE001 true negatives."""

__all__ = ["annotated", "Thing", "outer"]


def annotated() -> int:
    return 1


def _private(x):  # private helpers are exempt
    return x


class Thing:
    def __init__(self, x):  # protocol dunder: return type is fixed
        self.x = x

    def value(self) -> int:
        return self.x

    def _helper(self):
        return None


def outer() -> int:
    def inner(y):  # nested closures are implementation detail
        return y

    return inner(1)
