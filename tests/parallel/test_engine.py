"""ParallelDPsize engine semantics: jobs=1 exactness, gating, lifecycle."""

from __future__ import annotations

import random

import pytest

from repro.catalog.catalog import Catalog
from repro.core.dpsize import DPsize
from repro.cost.disk import DiskCostModel
from repro.errors import OptimizerError
from repro.graph.generators import graph_for_topology, random_connected_graph
from repro.obs import Instrumentation
from repro.parallel import ParallelDPsize

from tests.conftest import graph_of


def random_instance(topology, n, seed):
    rng = random.Random(seed)
    graph = (
        graph_for_topology(topology, n, rng=rng)
        if topology != "random"
        else random_connected_graph(n, rng=rng)
    )
    catalog = Catalog.from_cardinalities(
        [float(rng.randint(10, 100000)) for _ in range(n)]
    )
    return graph, catalog


class TestJobsOneExactness:
    """jobs=1 must equal sequential DPsize bit for bit, pool-free."""

    def test_identical_to_sequential(self, paper_topology):
        engine = ParallelDPsize(jobs=1)
        sequential = DPsize()
        for n in (2, 3, 5, 8, 10):
            if paper_topology == "cycle" and n < 3:
                continue
            graph, catalog = random_instance(paper_topology, n, seed=n * 31)
            reference = sequential.optimize(graph, catalog=catalog)
            result = engine.optimize(graph, catalog=catalog)
            assert result.cost == reference.cost
            assert result.counters.as_dict() == reference.counters.as_dict()
            assert result.table_size == reference.table_size
            assert result.table_probes == reference.table_probes
            assert result.table_improvements == reference.table_improvements
            assert repr(result.plan) == repr(reference.plan)
        assert not engine.pool_spawned

    def test_obs_counter_totals_match_sequential(self):
        graph, catalog = random_instance("clique", 8, seed=3)
        seq_obs = Instrumentation()
        DPsize().optimize(graph, catalog=catalog, instrumentation=seq_obs)
        par_obs = Instrumentation()
        engine = ParallelDPsize(jobs=1)
        engine.optimize(graph, catalog=catalog, instrumentation=par_obs)
        seq = seq_obs.counters.snapshot()
        par = par_obs.counters.snapshot()
        # Same events, same totals, modulo the algorithm-name namespace
        # and the parallel driver's own bookkeeping counters.
        strip = lambda counters, name: {
            key.replace(f"enumerator.{name}.", "enumerator."): value
            for key, value in counters.items()
            if not key.startswith("parallel.")
        }
        assert strip(par, "ParallelDPsize") == strip(seq, "DPsize")
        assert not engine.pool_spawned

    def test_single_relation(self):
        graph = graph_of("chain", 1)
        result = ParallelDPsize(jobs=1).optimize(graph)
        assert result.n_relations == 1
        assert result.table_size == 1

    def test_two_relations(self):
        graph, catalog = random_instance("chain", 2, seed=9)
        reference = DPsize().optimize(graph, catalog=catalog)
        result = ParallelDPsize(jobs=1).optimize(graph, catalog=catalog)
        assert result.cost == reference.cost
        assert repr(result.plan) == repr(reference.plan)


class TestCostModelGating:
    def test_non_separable_model_falls_back(self):
        graph, _ = random_instance("star", 6, seed=4)
        model = DiskCostModel(graph, Catalog.uniform(6))
        assert model.separable_join_operator is None
        reference_model = DiskCostModel(graph, Catalog.uniform(6))
        reference = DPsize().optimize(graph, cost_model=reference_model)
        obs = Instrumentation()
        result = ParallelDPsize(jobs=1).optimize(
            graph, cost_model=model, instrumentation=obs
        )
        assert result.cost == reference.cost
        assert result.counters.as_dict() == reference.counters.as_dict()
        assert obs.counters.value("parallel.sequential_fallbacks") == 1
        # The sequential fallback never emits per-level parallel events.
        assert obs.counters.value("parallel.levels") == 0


class TestLifecycle:
    def test_rejects_bad_jobs(self):
        with pytest.raises(OptimizerError):
            ParallelDPsize(jobs=0)
        with pytest.raises(OptimizerError):
            ParallelDPsize(jobs=2, shards_per_worker=0)

    def test_context_manager_and_close_idempotent(self):
        with ParallelDPsize(jobs=1) as engine:
            graph = graph_of("chain", 4)
            engine.optimize(graph)
        engine.close()
        assert not engine.pool_spawned

    def test_jobs_property(self):
        assert ParallelDPsize(jobs=3).jobs == 3
        assert ParallelDPsize(jobs=None).jobs >= 1


class TestObsEvents:
    def test_level_counters_published(self):
        graph, catalog = random_instance("clique", 7, seed=6)
        obs = Instrumentation()
        ParallelDPsize(jobs=1).optimize(
            graph, catalog=catalog, instrumentation=obs
        )
        counters = obs.counters
        # One level per plan size 2..n, one in-process shard each.
        assert counters.value("parallel.levels") == 6
        assert counters.value("parallel.shards") == 6
        assert counters.value("parallel.levels_dispatched") == 0
        assert counters.value("enumerator.ParallelDPsize.inner_loop_tests") > 0
