"""Unit tests for the shard partitioner (repro.parallel.partition)."""

from __future__ import annotations

import random

import pytest

from repro.parallel.partition import iter_pair_range, pair_count, split_range


def reference_pairs(buckets, size):
    """The sequential DPsize candidate order, written as the naive loops."""
    pairs = []
    for left_size in range(1, size // 2 + 1):
        right_size = size - left_size
        left_bucket = buckets[left_size] if left_size < len(buckets) else []
        right_bucket = buckets[right_size] if right_size < len(buckets) else []
        for position, left in enumerate(left_bucket):
            partners = (
                right_bucket[position + 1 :]
                if left_size == right_size
                else right_bucket
            )
            for right in partners:
                pairs.append((left, right))
    return pairs


def random_buckets(rng, max_size=6):
    """Bucket lists with random sizes; entries are unique tokens."""
    buckets = [[]]
    token = 0
    for _ in range(max_size):
        bucket = []
        for _ in range(rng.randrange(0, 7)):
            bucket.append(token)
            token += 1
        buckets.append(bucket)
    return buckets


class TestPairCount:
    def test_docstring_cases(self):
        assert pair_count([0, 3, 2], 3) == 6
        assert pair_count([0, 4], 2) == 6

    def test_matches_reference_loops(self):
        rng = random.Random(7)
        for _ in range(50):
            buckets = random_buckets(rng)
            for size in range(2, len(buckets) + 1):
                sizes = [len(b) for b in buckets]
                assert pair_count(sizes, size) == len(
                    reference_pairs(buckets, size)
                ), (sizes, size)

    def test_rejects_trivial_levels(self):
        with pytest.raises(ValueError):
            pair_count([0, 3], 1)


class TestSplitRange:
    def test_docstring_cases(self):
        assert split_range(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert split_range(2, 4) == [(0, 1), (1, 2)]
        assert split_range(0, 4) == []

    def test_properties(self):
        rng = random.Random(11)
        for _ in range(200):
            total = rng.randrange(0, 500)
            shards = rng.randrange(1, 20)
            ranges = split_range(total, shards)
            # Contiguous cover of range(total), in order.
            cursor = 0
            for start, stop in ranges:
                assert start == cursor
                assert stop > start  # never empty
                cursor = stop
            assert cursor == total
            assert len(ranges) <= shards
            if ranges:
                widths = [stop - start for start, stop in ranges]
                assert max(widths) - min(widths) <= 1  # near-equal

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            split_range(10, 0)


class TestIterPairRange:
    def test_full_range_equals_reference(self):
        rng = random.Random(3)
        for _ in range(30):
            buckets = random_buckets(rng)
            for size in range(2, len(buckets) + 1):
                total = pair_count([len(b) for b in buckets], size)
                assert (
                    list(iter_pair_range(buckets, size, 0, total))
                    == reference_pairs(buckets, size)
                )

    def test_shards_concatenate_to_reference(self):
        rng = random.Random(5)
        for _ in range(30):
            buckets = random_buckets(rng)
            size = rng.randrange(2, len(buckets) + 1)
            total = pair_count([len(b) for b in buckets], size)
            shards = rng.randrange(1, 8)
            merged = []
            for start, stop in split_range(total, shards):
                merged.extend(iter_pair_range(buckets, size, start, stop))
            assert merged == reference_pairs(buckets, size)

    def test_arbitrary_subranges(self):
        rng = random.Random(13)
        buckets = random_buckets(rng)
        size = 4
        total = pair_count([len(b) for b in buckets], size)
        reference = reference_pairs(buckets, size)
        for _ in range(100):
            start = rng.randrange(0, total + 1)
            stop = rng.randrange(start, total + 1)
            assert (
                list(iter_pair_range(buckets, size, start, stop))
                == reference[start:stop]
            )

    def test_empty_range(self):
        assert list(iter_pair_range([[], [1, 2]], 2, 0, 0)) == []

    def test_rejects_invalid_range(self):
        with pytest.raises(ValueError):
            list(iter_pair_range([[], [1, 2]], 2, 1, 0))
        with pytest.raises(ValueError):
            list(iter_pair_range([[], [1, 2]], 2, -1, 0))

    def test_same_size_level_skips_correctly(self):
        # Level 2 pairs singletons with later singletons only
        # (unordered), the trickiest skip arithmetic.
        buckets = [[], [10, 20, 30, 40]]
        total = pair_count([0, 4], 2)
        assert total == 6
        full = list(iter_pair_range(buckets, 2, 0, total))
        assert full == [
            (10, 20), (10, 30), (10, 40), (20, 30), (20, 40), (30, 40),
        ]
        for start in range(total + 1):
            assert list(iter_pair_range(buckets, 2, start, total)) == full[start:]
