"""Differential battery: the parallel driver vs the exact enumerators.

The acceptance bar for :mod:`repro.parallel`: on chain/cycle/star/
clique/random graphs up to n=10, parallel plans must cost exactly what
the sequential exact enumerators (DPsize, DPccp) compute — for 1, 2 and
4 workers. The multi-worker engines force pool dispatch on every level
(``min_pairs_per_shard=1``) so the fork/merge path is what's tested,
not the in-process shortcut; the pools are module-scoped because fork
startup is the expensive part.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.catalog import Catalog
from repro.core.dpccp import DPccp
from repro.core.dpsize import DPsize
from repro.graph.generators import graph_for_topology, random_connected_graph
from repro.parallel import ParallelDPsize

TOPOLOGIES = ("chain", "cycle", "star", "clique", "random")
SIZES = (3, 5, 7, 10)


@pytest.fixture(scope="module")
def engines():
    """One engine per worker count, pools shared across the battery."""
    with ParallelDPsize(jobs=1) as one, ParallelDPsize(
        jobs=2, min_pairs_per_shard=1
    ) as two, ParallelDPsize(jobs=4, min_pairs_per_shard=1) as four:
        yield {1: one, 2: two, 4: four}


def instance(topology: str, n: int):
    rng = random.Random(n * 101 + len(topology))
    if topology == "random":
        graph = random_connected_graph(n, rng=rng)
    else:
        graph = graph_for_topology(topology, n, rng=rng)
    catalog = Catalog.from_cardinalities(
        [float(rng.randint(10, 100000)) for _ in range(n)]
    )
    return graph, catalog


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("n", SIZES)
def test_parallel_matches_exact_enumerators(engines, topology, n):
    if topology == "cycle" and n < 3:
        pytest.skip("2-cycles degenerate to chains")
    graph, catalog = instance(topology, n)
    dpsize = DPsize().optimize(graph, catalog=catalog)
    dpccp = DPccp().optimize(graph, catalog=catalog)
    # Both are exact; their enumeration orders memoize cardinalities at
    # different split points, so they can differ in the last float ulp.
    assert dpsize.cost == pytest.approx(dpccp.cost)
    # Sized-down battery for the 4-worker engine: full sweep at 1 and
    # 2 workers, the largest instance per topology at 4.
    worker_counts = (1, 2, 4) if n == SIZES[-1] else (1, 2)
    for workers in worker_counts:
        result = engines[workers].optimize(graph, catalog=catalog)
        assert result.cost == dpsize.cost, (topology, n, workers)
        assert result.counters.as_dict() == dpsize.counters.as_dict()
        assert result.table_size == dpsize.table_size
        assert repr(result.plan) == repr(dpsize.plan)


def test_forced_dispatch_actually_used_the_pool(engines):
    graph, catalog = instance("clique", 8)
    engines[2].optimize(graph, catalog=catalog)
    assert engines[2].pool_spawned
    assert not engines[1].pool_spawned


def test_warm_pool_reuse_stays_exact(engines):
    """Re-planning the same query through a warm pool changes nothing."""
    graph, catalog = instance("star", 9)
    reference = DPsize().optimize(graph, catalog=catalog)
    first = engines[2].optimize(graph, catalog=catalog)
    second = engines[2].optimize(graph, catalog=catalog)
    for result in (first, second):
        assert result.cost == reference.cost
        assert result.counters.as_dict() == reference.counters.as_dict()
        assert repr(result.plan) == repr(reference.plan)
