"""Fault-injection battery: worker death, retries, breaker, respawn.

Workers are killed for real (SIGKILL from inside via the
:func:`~repro.parallel.worker.crash_worker` poison task, or from the
outside via the PIDs :func:`~repro.parallel.worker.worker_pid`
reports), and the assertions pin the recovery contract: the pool
respawns, lost work re-runs, results stay bit-identical to the
sequential enumerators, and exhausted retries degrade instead of
raising out of the planning path.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time

import pytest

from repro.core.dpsize import DPsize
from repro.errors import OptimizerError, PoolBrokenError
from repro.graph.generators import graph_for_topology
from repro.catalog.synthetic import random_catalog
from repro.obs import Instrumentation
from repro.parallel import CircuitBreaker, ParallelDPsize, PlanningPool, RetryPolicy
from repro.parallel.worker import crash_worker, worker_pid


def fast_policy(max_retries=3):
    return RetryPolicy(
        max_retries=max_retries, backoff_seconds=0.01, max_backoff_seconds=0.05
    )


def instance(n, seed, topology="star"):
    rng = random.Random(seed)
    graph = graph_for_topology(topology, n, rng=rng)
    return graph, random_catalog(n, rng)


def poison(pool):
    """Break the pool's live executor by killing one worker from inside."""
    with pytest.raises(Exception):
        pool.submit(crash_worker).result()


def always_poisoned(pool):
    """Patch helper: every (re)spawned executor is immediately killed.

    Simulates a host where workers die faster than they respawn (hard
    memory pressure), which is what exhausts the retry budget.
    """
    original_ensure = pool._ensure_executor

    def ensure_and_poison():
        executor = original_ensure()
        try:
            executor.submit(crash_worker)
            time.sleep(0.2)
        except Exception:
            pass  # already broken: exactly the state we want
        return executor

    return ensure_and_poison


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_retries=5,
            backoff_seconds=0.1,
            backoff_multiplier=2.0,
            max_backoff_seconds=0.3,
            jitter_fraction=0.0,
        )
        rng = random.Random(0)
        delays = [policy.delay_seconds(attempt, rng) for attempt in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(backoff_seconds=1.0, jitter_fraction=0.5)
        rng = random.Random(7)
        for _ in range(200):
            delay = policy.delay_seconds(1, rng)
            assert 0.5 <= delay <= 1.0

    def test_rejects_bad_configuration(self):
        with pytest.raises(OptimizerError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(OptimizerError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(OptimizerError):
            RetryPolicy(jitter_fraction=1.5)
        with pytest.raises(OptimizerError):
            RetryPolicy().delay_seconds(0, random.Random(0))


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_seconds=10.0, clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_seconds=10.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.1)
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # no second probe while one is in flight
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_transitions_and_rejections_are_counted(self):
        clock = FakeClock()
        obs = Instrumentation()
        breaker = CircuitBreaker(
            threshold=1, cooldown_seconds=5.0, clock=clock, instrumentation=obs
        )
        breaker.record_failure()
        breaker.allow()  # rejected
        clock.advance(5.1)
        breaker.allow()  # half-open probe
        breaker.record_success()
        counters = obs.counters
        assert counters.value("breaker.state.open") == 1
        assert counters.value("breaker.state.half_open") == 1
        assert counters.value("breaker.state.closed") == 1
        assert counters.value("breaker.rejections") == 1

    def test_rejects_bad_configuration(self):
        with pytest.raises(OptimizerError):
            CircuitBreaker(threshold=0)
        with pytest.raises(OptimizerError):
            CircuitBreaker(cooldown_seconds=0.0)


class TestPoolFaultRecovery:
    def test_kill_then_run_query_respawns_and_completes(self):
        graph, catalog = instance(7, seed=3)
        reference = DPsize().optimize(graph, catalog=catalog)
        obs = Instrumentation()
        with PlanningPool(
            2, retry_policy=fast_policy(), instrumentation=obs
        ) as pool:
            assert pool.submit(worker_pid).result() > 0
            poison(pool)
            assert not pool.healthy
            outcome = pool.run_query(graph, catalog, "dpsize")
            assert pool.healthy
            assert outcome.result.cost == reference.cost
            assert (
                outcome.result.counters.as_dict() == reference.counters.as_dict()
            )
            assert pool.fault_count >= 1
            assert pool.respawn_count >= 1
        assert obs.counters.value("pool.faults") >= 1
        assert obs.counters.value("pool.respawns") >= 1

    def test_run_query_killed_mid_flight_retries(self):
        graph, catalog = instance(8, seed=5, topology="clique")
        reference = DPsize().optimize(graph, catalog=catalog)
        with PlanningPool(2, retry_policy=fast_policy()) as pool:
            pids = {pool.submit(worker_pid, token).result() for token in range(8)}
            done = threading.Event()
            outcomes = []

            def run():
                outcomes.append(pool.run_query(graph, catalog, "dpsize"))
                done.set()

            thread = threading.Thread(target=run)
            thread.start()
            os.kill(next(iter(pids)), signal.SIGKILL)
            assert done.wait(timeout=60.0), "run_query never completed"
            thread.join()
            assert outcomes[0].result.cost == reference.cost

    def test_retries_exhausted_raises_pool_broken(self):
        with PlanningPool(
            2, retry_policy=RetryPolicy(max_retries=0, backoff_seconds=0.0)
        ) as pool:
            poison(pool)
            # Every respawned attempt is poisoned again before use, so
            # the zero-retry budget is exhausted on the first fault.
            graph, catalog = instance(5, seed=1)
            pool._ensure_executor = always_poisoned(pool)
            with pytest.raises(PoolBrokenError):
                pool.run_query(graph, catalog, "dpsize")

    def test_deadline_caps_retry_budget(self):
        obs = Instrumentation()
        with PlanningPool(
            2,
            retry_policy=RetryPolicy(max_retries=10, backoff_seconds=0.05),
            instrumentation=obs,
        ) as pool:
            graph, catalog = instance(5, seed=1)
            pool._ensure_executor = always_poisoned(pool)
            started = time.monotonic()
            with pytest.raises(PoolBrokenError):
                pool.run_query(
                    graph, catalog, "dpsize", deadline_at=time.monotonic() + 0.5
                )
            # Bounded by the deadline, not by the 10-retry budget (each
            # poisoned attempt alone takes ~0.2s to settle).
            assert time.monotonic() - started < 10.0
            assert obs.counters.value("retry.deadline_exhausted") >= 1


class TestShardFaultRecovery:
    def test_run_shards_survive_poisoned_pool(self):
        """A broken executor at dispatch time: shards re-run, results exact."""
        graph, catalog = instance(9, seed=11, topology="clique")
        reference = DPsize().optimize(graph, catalog=catalog)
        obs = Instrumentation()
        with PlanningPool(
            2, retry_policy=fast_policy(), instrumentation=obs
        ) as pool:
            poison(pool)
            with ParallelDPsize(pool=pool, min_pairs_per_shard=1) as engine:
                result = engine.optimize(graph, catalog=catalog)
            assert result.cost == reference.cost
            assert result.counters.as_dict() == reference.counters.as_dict()
            assert repr(result.plan) == repr(reference.plan)
            assert pool.respawn_count >= 1

    def test_run_shards_killed_mid_level(self):
        """SIGKILL a worker while shards are in flight; plan stays exact."""
        graph, catalog = instance(10, seed=13, topology="clique")
        reference = DPsize().optimize(graph, catalog=catalog)
        with PlanningPool(2, retry_policy=fast_policy()) as pool:
            pids = {pool.submit(worker_pid, token).result() for token in range(8)}
            killed = threading.Event()

            def kill_soon():
                time.sleep(0.05)
                for pid in list(pids)[:1]:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                killed.set()

            killer = threading.Thread(target=kill_soon)
            killer.start()
            with ParallelDPsize(pool=pool, min_pairs_per_shard=1) as engine:
                result = engine.optimize(graph, catalog=catalog)
            killer.join()
            assert killed.is_set()
            assert result.cost == reference.cost
            assert result.counters.as_dict() == reference.counters.as_dict()

    def test_open_breaker_degrades_in_process(self):
        """With the breaker open the engine never touches the pool."""
        graph, catalog = instance(8, seed=7, topology="clique")
        reference = DPsize().optimize(graph, catalog=catalog)
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=1e9, clock=clock)
        breaker.record_failure()  # permanently open under the fake clock
        obs = Instrumentation()
        with ParallelDPsize(
            jobs=2, min_pairs_per_shard=1, breaker=breaker
        ) as engine:
            result = engine.optimize(graph, catalog=catalog, instrumentation=obs)
            assert not engine.pool_spawned or engine.breaker.state == "open"
        assert result.cost == reference.cost
        assert result.counters.as_dict() == reference.counters.as_dict()
        assert obs.counters.value("parallel.degraded_levels") > 0
