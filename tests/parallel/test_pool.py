"""PlanningPool and the service's process-pool integration."""

from __future__ import annotations

import random

import pytest

from repro.catalog.catalog import Catalog
from repro.core.dpccp import DPccp
from repro.errors import OptimizerError
from repro.graph.generators import graph_for_topology
from repro.parallel import PlanningPool, default_jobs
from repro.service import PlanRequest, PlanService
from repro.service.batch import default_concurrency


def instance(n, seed):
    rng = random.Random(seed)
    graph = graph_for_topology("star" if n % 2 else "clique", n, rng=rng)
    catalog = Catalog.from_cardinalities(
        [float(rng.randint(10, 9999)) for _ in range(n)]
    )
    return graph, catalog


class TestPlanningPool:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_rejects_bad_jobs(self):
        with pytest.raises(OptimizerError):
            PlanningPool(0)

    def test_lazy_spawn_and_repr(self):
        pool = PlanningPool(2)
        assert not pool.spawned
        assert "cold" in repr(pool)
        pool.close()  # closing a never-spawned pool is fine

    def test_submit_after_close_rejected(self):
        pool = PlanningPool(2)
        pool.close()
        with pytest.raises(OptimizerError):
            pool.submit(len, ())

    def test_submit_query_matches_sequential(self):
        graph, catalog = instance(7, seed=1)
        reference = DPccp().optimize(graph, catalog=catalog)
        with PlanningPool(2) as pool:
            outcome = pool.submit_query(graph, catalog, "dpccp").result()
            assert pool.spawned
        assert outcome.result.cost == reference.cost
        assert outcome.result.counters.as_dict() == reference.counters.as_dict()
        assert repr(outcome.result.plan) == repr(reference.plan)
        assert outcome.cpu_seconds >= 0.0


class TestServiceProcessPool:
    def test_jobs_enable_process_planning(self):
        cases = [(6, 2), (7, 3), (8, 4)]
        refs = {}
        with PlanService(algorithm="dpccp") as service:
            for n, seed in cases:
                graph, catalog = instance(n, seed)
                refs[(n, seed)] = service.plan(graph, catalog).cost
            assert service.jobs == 1
        with PlanService(algorithm="dpccp", jobs=2, workers=2) as service:
            assert service.jobs == 2
            requests = [
                PlanRequest(*instance(n, seed)) for n, seed in cases
            ] + [PlanRequest(*instance(6, 2))]
            responses = service.plan_batch(requests)
            for index, (n, seed) in enumerate(cases):
                assert responses[index].cost == refs[(n, seed)]
            assert responses[3].cache_hit
            counters = service.instrumentation.counters
            # Worker-process runs land in the shared obs registries.
            assert counters.value("process_planned") == len(cases)
            assert (
                counters.value("enumerator.DPccp.inner_loop_tests") > 0
            )

    def test_submit_request_future(self):
        graph, catalog = instance(6, 5)
        with PlanService(algorithm="dpccp") as service:
            reference = service.plan(graph, catalog).cost
        with PlanService(algorithm="dpccp", jobs=2) as service:
            future = service.submit_request(
                PlanRequest(graph=graph, catalog=catalog)
            )
            assert future.result().cost == reference

    def test_rejects_bad_jobs(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            PlanService(jobs=0)


class TestBatchConcurrencyDerivation:
    def test_scales_with_workers(self):
        with PlanService(workers=16) as service:
            assert default_concurrency(service) == 32
        with PlanService(workers=1) as service:
            assert default_concurrency(service) == 2

    def test_default_service_keeps_old_bound(self):
        # The historical hardcoded bound was 8 for the default
        # 4-worker service; the derivation preserves it.
        with PlanService() as service:
            assert default_concurrency(service) == 8
