"""Unit tests for repro.bitset."""

from __future__ import annotations

import pytest

from repro import bitset


class TestBit:
    def test_singletons(self):
        assert bitset.bit(0) == 1
        assert bitset.bit(5) == 32

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bitset.bit(-1)

    def test_large_index(self):
        # Python ints are unbounded; >64 relations must work.
        assert bitset.bit(100) == 1 << 100


class TestSetOf:
    def test_empty(self):
        assert bitset.set_of([]) == bitset.EMPTY

    def test_members(self):
        assert bitset.set_of([0, 2, 3]) == 0b1101

    def test_duplicates_collapse(self):
        assert bitset.set_of([1, 1, 1]) == 0b10


class TestOnlyBit:
    def test_singleton(self):
        assert bitset.only_bit(8)

    def test_multiple(self):
        assert not bitset.only_bit(0b101)

    def test_empty(self):
        assert not bitset.only_bit(0)


class TestIterBits:
    def test_ascending_order(self):
        assert list(bitset.iter_bits(0b10110)) == [1, 2, 4]

    def test_empty(self):
        assert list(bitset.iter_bits(0)) == []

    def test_roundtrip_with_set_of(self):
        mask = 0b1011001
        assert bitset.set_of(bitset.iter_bits(mask)) == mask


class TestIterSubsets:
    def test_strict_nonempty_subsets(self):
        subsets = list(bitset.iter_subsets(0b111))
        assert subsets == [0b001, 0b010, 0b011, 0b100, 0b101, 0b110]

    def test_excludes_self_and_empty(self):
        subsets = list(bitset.iter_subsets(0b101))
        assert 0 not in subsets
        assert 0b101 not in subsets

    def test_count_is_2k_minus_2(self):
        mask = 0b11110
        assert len(list(bitset.iter_subsets(mask))) == 2**4 - 2

    def test_empty_mask(self):
        assert list(bitset.iter_subsets(0)) == []

    def test_singleton_mask(self):
        assert list(bitset.iter_subsets(0b100)) == []

    def test_subsets_before_supersets(self):
        seen: set[int] = set()
        for subset in bitset.iter_subsets(0b11011):
            for earlier in seen:
                if earlier | subset == subset:  # earlier is a subset
                    assert earlier in seen
            seen.add(subset)
        # Numeric ascending order implies subset-before-superset.
        ordered = list(bitset.iter_subsets(0b11011))
        assert ordered == sorted(ordered)


class TestIterAllSubsets:
    def test_includes_self(self):
        assert list(bitset.iter_all_subsets(0b101)) == [0b001, 0b100, 0b101]

    def test_empty(self):
        assert list(bitset.iter_all_subsets(0)) == []


class TestIterSupersetsWithin:
    def test_basic(self):
        result = list(bitset.iter_supersets_within(0b001, 0b101))
        assert result == [0b001, 0b101]

    def test_mask_equals_universe(self):
        assert list(bitset.iter_supersets_within(0b11, 0b11)) == [0b11]

    def test_mask_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            list(bitset.iter_supersets_within(0b100, 0b011))

    def test_counts(self):
        result = list(bitset.iter_supersets_within(0b1, 0b1111))
        assert len(result) == 2**3
        assert all(superset & 0b1 for superset in result)


class TestLowHighBits:
    def test_lowest_bit(self):
        assert bitset.lowest_bit(0b1100) == 0b100

    def test_lowest_bit_index(self):
        assert bitset.lowest_bit_index(0b1100) == 2

    def test_highest_bit_index(self):
        assert bitset.highest_bit_index(0b1100) == 3

    @pytest.mark.parametrize(
        "function",
        [bitset.lowest_bit, bitset.lowest_bit_index, bitset.highest_bit_index],
    )
    def test_empty_rejected(self, function):
        with pytest.raises(ValueError):
            function(0)


class TestPredicates:
    def test_popcount(self):
        assert bitset.popcount(0) == 0
        assert bitset.popcount(0b10101) == 3

    def test_is_subset(self):
        assert bitset.is_subset(0, 0b1)
        assert bitset.is_subset(0b101, 0b111)
        assert not bitset.is_subset(0b101, 0b110)

    def test_is_disjoint(self):
        assert bitset.is_disjoint(0b101, 0b010)
        assert not bitset.is_disjoint(0b101, 0b100)
        assert bitset.is_disjoint(0, 0)


class TestFormatBits:
    def test_empty(self):
        assert bitset.format_bits(0) == "{}"

    def test_members(self):
        assert bitset.format_bits(0b101) == "{R0, R2}"
