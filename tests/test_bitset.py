"""Unit tests for repro.bitset."""

from __future__ import annotations

import pytest

from repro import bitset


class TestBit:
    def test_singletons(self):
        assert bitset.bit(0) == 1
        assert bitset.bit(5) == 32

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            bitset.bit(-1)

    def test_large_index(self):
        # Python ints are unbounded; >64 relations must work.
        assert bitset.bit(100) == 1 << 100


class TestSetOf:
    def test_empty(self):
        assert bitset.set_of([]) == bitset.EMPTY

    def test_members(self):
        assert bitset.set_of([0, 2, 3]) == 0b1101

    def test_duplicates_collapse(self):
        assert bitset.set_of([1, 1, 1]) == 0b10


class TestOnlyBit:
    def test_singleton(self):
        assert bitset.only_bit(8)

    def test_multiple(self):
        assert not bitset.only_bit(0b101)

    def test_empty(self):
        assert not bitset.only_bit(0)


class TestIterBits:
    def test_ascending_order(self):
        assert list(bitset.iter_bits(0b10110)) == [1, 2, 4]

    def test_empty(self):
        assert list(bitset.iter_bits(0)) == []

    def test_roundtrip_with_set_of(self):
        mask = 0b1011001
        assert bitset.set_of(bitset.iter_bits(mask)) == mask


class TestIterSubsets:
    def test_strict_nonempty_subsets(self):
        subsets = list(bitset.iter_subsets(0b111))
        assert subsets == [0b001, 0b010, 0b011, 0b100, 0b101, 0b110]

    def test_excludes_self_and_empty(self):
        subsets = list(bitset.iter_subsets(0b101))
        assert 0 not in subsets
        assert 0b101 not in subsets

    def test_count_is_2k_minus_2(self):
        mask = 0b11110
        assert len(list(bitset.iter_subsets(mask))) == 2**4 - 2

    def test_empty_mask(self):
        assert list(bitset.iter_subsets(0)) == []

    def test_singleton_mask(self):
        assert list(bitset.iter_subsets(0b100)) == []

    def test_subsets_before_supersets(self):
        seen: set[int] = set()
        for subset in bitset.iter_subsets(0b11011):
            for earlier in seen:
                if earlier | subset == subset:  # earlier is a subset
                    assert earlier in seen
            seen.add(subset)
        # Numeric ascending order implies subset-before-superset.
        ordered = list(bitset.iter_subsets(0b11011))
        assert ordered == sorted(ordered)


class TestIterAllSubsets:
    def test_includes_self(self):
        assert list(bitset.iter_all_subsets(0b101)) == [0b001, 0b100, 0b101]

    def test_empty(self):
        assert list(bitset.iter_all_subsets(0)) == []


class TestIterSupersetsWithin:
    def test_basic(self):
        result = list(bitset.iter_supersets_within(0b001, 0b101))
        assert result == [0b001, 0b101]

    def test_mask_equals_universe(self):
        assert list(bitset.iter_supersets_within(0b11, 0b11)) == [0b11]

    def test_mask_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            list(bitset.iter_supersets_within(0b100, 0b011))

    def test_counts(self):
        result = list(bitset.iter_supersets_within(0b1, 0b1111))
        assert len(result) == 2**3
        assert all(superset & 0b1 for superset in result)


class TestLowHighBits:
    def test_lowest_bit(self):
        assert bitset.lowest_bit(0b1100) == 0b100

    def test_lowest_bit_index(self):
        assert bitset.lowest_bit_index(0b1100) == 2

    def test_highest_bit_index(self):
        assert bitset.highest_bit_index(0b1100) == 3

    @pytest.mark.parametrize(
        "function",
        [bitset.lowest_bit, bitset.lowest_bit_index, bitset.highest_bit_index],
    )
    def test_empty_rejected(self, function):
        with pytest.raises(ValueError):
            function(0)


class TestPredicates:
    def test_popcount(self):
        assert bitset.popcount(0) == 0
        assert bitset.popcount(0b10101) == 3

    def test_is_subset(self):
        assert bitset.is_subset(0, 0b1)
        assert bitset.is_subset(0b101, 0b111)
        assert not bitset.is_subset(0b101, 0b110)

    def test_is_disjoint(self):
        assert bitset.is_disjoint(0b101, 0b010)
        assert not bitset.is_disjoint(0b101, 0b100)
        assert bitset.is_disjoint(0, 0)


class TestFormatBits:
    def test_empty(self):
        assert bitset.format_bits(0) == "{}"

    def test_members(self):
        assert bitset.format_bits(0b101) == "{R0, R2}"


class TestWordBoundaries:
    """Masks at and beyond the 64-bit word boundary.

    Python ints are unbounded, but 63/64/65 relations are exactly where
    a fixed-width bitset implementation would wrap, overflow a sign
    bit, or truncate — the shard partitioner and the DP plan tables
    (dicts keyed by these masks) must be unaffected.
    """

    @pytest.mark.parametrize("n", [63, 64, 65])
    def test_all_bits_set(self, n):
        full = bitset.set_of(range(n))
        assert full == (1 << n) - 1
        assert bitset.popcount(full) == n
        assert bitset.highest_bit_index(full) == n - 1
        assert bitset.lowest_bit_index(full) == 0
        assert not bitset.only_bit(full)

    @pytest.mark.parametrize("n", [63, 64, 65])
    def test_iteration_order_is_ascending(self, n):
        full = bitset.set_of(range(n))
        assert list(bitset.iter_bits(full)) == list(range(n))

    @pytest.mark.parametrize("index", [62, 63, 64, 100])
    def test_single_high_bit(self, index):
        mask = bitset.bit(index)
        assert bitset.only_bit(mask)
        assert bitset.lowest_bit_index(mask) == index
        assert bitset.highest_bit_index(mask) == index
        assert list(bitset.iter_bits(mask)) == [index]

    def test_boundary_straddling_disjointness(self):
        below = bitset.set_of(range(0, 64))
        above = bitset.set_of(range(64, 128))
        assert bitset.is_disjoint(below, above)
        assert not bitset.is_disjoint(below | bitset.bit(64), above)
        assert bitset.is_subset(bitset.bit(63), below)
        assert bitset.is_subset(bitset.bit(64), above)

    def test_empty_set_behaviour(self):
        assert bitset.EMPTY == 0
        assert bitset.popcount(bitset.EMPTY) == 0
        assert list(bitset.iter_bits(bitset.EMPTY)) == []
        assert list(bitset.iter_subsets(bitset.EMPTY)) == []
        assert bitset.is_subset(bitset.EMPTY, bitset.set_of(range(65)))
        assert bitset.is_disjoint(bitset.EMPTY, bitset.EMPTY)

    def test_subset_enumeration_crosses_the_boundary(self):
        # A 3-member mask straddling bit 64: the Vance-Maier increment
        # must enumerate all 2^3 - 2 strict non-empty subsets.
        mask = bitset.set_of([63, 64, 65])
        subsets = list(bitset.iter_subsets(mask))
        assert len(subsets) == 2**3 - 2
        assert all(
            bitset.is_subset(subset, mask) and subset not in (0, mask)
            for subset in subsets
        )
        assert subsets == sorted(subsets)

    def test_format_bits_high_indices(self):
        assert bitset.format_bits(bitset.bit(64)) == "{R64}"
