"""Unit tests for the SQL-ish query parser."""

from __future__ import annotations

import pytest

from repro.core import DPccp
from repro.frontend import parse_query
from repro.frontend.parser import QueryParseError
from repro.plans.visitors import validate_plan

TPCH_ISH = """
    SELECT o.total, c.name
    FROM orders o (1500000), customer c (150000), nation n (25)
    WHERE o.custkey = c.custkey [1/150000]
      AND c.nationkey = n.nationkey [1/25]
"""


class TestHappyPath:
    def test_basic_parse(self):
        graph, catalog = parse_query(TPCH_ISH)
        assert graph.n_relations == 3
        assert graph.names == ("o", "c", "n")
        assert catalog.by_name("o").cardinality == 1_500_000
        assert len(graph.edges) == 2

    def test_selectivities(self):
        graph, _catalog = parse_query(TPCH_ISH)
        by_pair = {edge.endpoints: edge.selectivity for edge in graph.edges}
        assert by_pair[(0, 1)] == pytest.approx(1 / 150_000)
        assert by_pair[(1, 2)] == pytest.approx(1 / 25)

    def test_predicate_text_preserved(self):
        graph, _ = parse_query(TPCH_ISH)
        predicates = {edge.predicate for edge in graph.edges}
        assert "o.custkey = c.custkey" in predicates

    def test_optimizable_end_to_end(self):
        graph, catalog = parse_query(TPCH_ISH)
        result = DPccp().optimize(graph, catalog=catalog)
        validate_plan(result.plan, graph)

    def test_no_alias_uses_table_name(self):
        graph, catalog = parse_query(
            "SELECT * FROM a (10), b (20) WHERE a.x = b.y [0.5]"
        )
        assert graph.names == ("a", "b")
        assert catalog.by_name("b").cardinality == 20

    def test_defaults_applied(self):
        graph, catalog = parse_query(
            "SELECT * FROM a, b WHERE a.x = b.y",
            default_cardinality=77.0,
            default_selectivity=0.25,
        )
        assert catalog.by_name("a").cardinality == 77.0
        assert graph.edges[0].selectivity == 0.25

    def test_no_where_clause(self):
        graph, _ = parse_query("SELECT * FROM solo (42)")
        assert graph.n_relations == 1

    def test_trailing_semicolon_and_case(self):
        graph, _ = parse_query(
            "select * FROM a, b WhErE a.x = b.x [0.5];"
        )
        assert len(graph.edges) == 1

    def test_decimal_selectivity(self):
        graph, _ = parse_query(
            "SELECT * FROM a, b WHERE a.x = b.x [1e-3]"
        )
        assert graph.edges[0].selectivity == pytest.approx(0.001)

    def test_scientific_cardinality(self):
        _graph, catalog = parse_query("SELECT * FROM big (1.5e6)")
        assert catalog.by_name("big").cardinality == 1_500_000


class TestErrors:
    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("FROM a, b", "SELECT"),
            ("SELECT * FROM a a a", "FROM item"),
            ("SELECT * FROM a, a", "duplicate"),
            ("SELECT * FROM a, b WHERE a.x > b.y", "predicate"),
            ("SELECT * FROM a, b WHERE a.x = z.y", "unknown table alias"),
            ("SELECT * FROM a, b WHERE a.x = a.y", "local filter"),
            ("SELECT * FROM a, b WHERE a.x = b.y [2.0]", "selectivity"),
            ("SELECT * FROM a, b WHERE a.x = b.y [1/0]", "selectivity"),
        ],
    )
    def test_bad_inputs_rejected_with_context(self, text, fragment):
        with pytest.raises(QueryParseError) as excinfo:
            parse_query(text)
        assert fragment.lower() in str(excinfo.value).lower()

    def test_disconnected_query_surfaces_at_optimize_time(self):
        from repro.errors import DisconnectedGraphError

        graph, catalog = parse_query("SELECT * FROM a, b")
        with pytest.raises(DisconnectedGraphError):
            DPccp().optimize(graph, catalog=catalog)
