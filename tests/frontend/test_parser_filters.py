"""Local-filter grammar and clause-position error reporting."""

import pytest

from repro.frontend import (
    FilterPredicate,
    QueryParseError,
    parse_query,
    parse_query_detailed,
)


class TestFilterGrammar:
    def test_all_operators_parse(self):
        sql = (
            "SELECT * FROM a (10), b (10) WHERE a.x = b.x "
            "AND a.p = 1 AND a.q < 2 AND a.r <= 3 AND b.s > 4 AND b.t >= 5"
        )
        parsed = parse_query_detailed(sql)
        assert [f.op for f in parsed.filters] == ["=", "<", "<=", ">", ">="]
        assert [f.value for f in parsed.filters] == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert [f.alias for f in parsed.filters] == ["a", "a", "a", "b", "b"]

    def test_positions_are_one_based_conjunct_order(self):
        sql = "SELECT * FROM a (10), b (10) WHERE a.p < 1 AND a.x = b.x AND b.q > 2"
        parsed = parse_query_detailed(sql)
        assert [f.position for f in parsed.filters] == [1, 3]

    def test_negative_and_scientific_constants(self):
        sql = "SELECT * FROM a (10), b (10) WHERE a.x = b.x AND a.p < -2.5e3"
        parsed = parse_query_detailed(sql)
        assert parsed.filters[0].value == -2500.0

    def test_selectivity_annotation_kept_else_none(self):
        sql = (
            "SELECT * FROM a (10), b (10) WHERE a.x = b.x "
            "AND a.p < 1 [0.25] AND a.q > 2"
        )
        parsed = parse_query_detailed(sql)
        assert parsed.filters[0].selectivity == 0.25
        assert parsed.filters[1].selectivity is None

    def test_text_property_round_trips_the_predicate(self):
        predicate = FilterPredicate(
            alias="o", column="totalprice", op="<", value=1000.0
        )
        assert predicate.text == "o.totalprice < 1000"

    def test_filters_do_not_change_graph_or_catalog(self):
        plain = "SELECT * FROM a (10), b (20) WHERE a.x = b.x [0.5]"
        filtered = plain + " AND a.p < 3 [0.1]"
        graph_plain, catalog_plain = parse_query(plain)
        graph_filtered, catalog_filtered = parse_query(filtered)
        assert graph_plain == graph_filtered
        assert catalog_plain.cardinalities() == catalog_filtered.cardinalities()
        assert not parse_query_detailed(plain).has_filters
        assert parse_query_detailed(filtered).has_filters


class TestErrorPositions:
    def test_bad_from_item_names_its_position_and_text(self):
        with pytest.raises(QueryParseError, match=r"FROM item 2 \('b\)\('\)"):
            parse_query("SELECT * FROM a (10), b)( WHERE a.x = b.x")

    def test_duplicate_alias_names_position(self):
        with pytest.raises(QueryParseError, match="FROM item 2: duplicate"):
            parse_query("SELECT * FROM a (10), a (20) WHERE a.x = a.y")

    def test_unknown_alias_in_join_names_predicate_position(self):
        with pytest.raises(
            QueryParseError, match="WHERE predicate 2.*unknown table alias 'z'"
        ):
            parse_query(
                "SELECT * FROM a (10), b (10) WHERE a.x = b.x AND a.x = z.x"
            )

    def test_unknown_alias_in_filter_names_predicate_position(self):
        with pytest.raises(
            QueryParseError, match="WHERE predicate 2.*unknown table alias 'z'"
        ):
            parse_query(
                "SELECT * FROM a (10), b (10) WHERE a.x = b.x AND z.p < 1"
            )

    def test_same_alias_column_comparison_rejected_specifically(self):
        with pytest.raises(QueryParseError, match="local filter comparing two"):
            parse_query(
                "SELECT * FROM a (10), b (10) WHERE a.x = b.x AND a.p = a.q"
            )

    def test_genuinely_unparseable_predicate_gets_generic_message(self):
        with pytest.raises(
            QueryParseError,
            match=r"cannot parse WHERE predicate 2 \('a\.p LIKE 1'\)",
        ):
            parse_query(
                "SELECT * FROM a (10), b (10) WHERE a.x = b.x AND a.p LIKE 1"
            )

    def test_bad_filter_selectivity_names_predicate(self):
        with pytest.raises(
            QueryParseError, match=r"WHERE predicate 2.*\(0, 1\]"
        ):
            parse_query(
                "SELECT * FROM a (10), b (10) WHERE a.x = b.x AND a.p < 1 [1.5]"
            )

    def test_filter_only_where_clause_is_fine(self):
        parsed = parse_query_detailed("SELECT * FROM a (10) WHERE a.p < 1")
        assert parsed.graph.n_relations == 1
        assert parsed.filters[0].position == 1
