"""End-to-end pipeline: differential identity, accuracy, service, CLI."""

import json
from statistics import median

import pytest

from repro.cli import main
from repro.core import make_algorithm
from repro.frontend.parser import parse_query
from repro.io import plan_to_dict
from repro.pipeline import run_pipeline, tpch_workload
from repro.service import PlanService

WORKLOAD = tpch_workload(scale=0.15, seed=42)


def filter_free_queries():
    return [q for q in WORKLOAD.queries if " < " not in q.sql and " >= " not in q.sql
            and " = 0" not in q.sql]


class TestDifferentialIdentity:
    @pytest.mark.parametrize("algorithm", ["dpsize", "dpsub", "dpccp"])
    def test_independence_plans_bit_identical_to_direct_optimizer(
        self, algorithm
    ):
        queries = filter_free_queries()
        assert queries, "workload must contain filter-free queries"
        for query in queries:
            graph, catalog = parse_query(query.sql)
            direct = make_algorithm(algorithm).optimize(graph, catalog=catalog)
            piped = run_pipeline(
                query.sql,
                estimator="independence",
                algorithm=algorithm,
                execute=False,
            )
            assert plan_to_dict(piped.plan) == plan_to_dict(direct.plan), (
                query.name
            )
            assert piped.optimization.cost == direct.cost


class TestEndToEnd:
    def test_executes_and_reports(self):
        query = WORKLOAD.queries[0]
        result = run_pipeline(
            query.sql, tables=WORKLOAD.tables, estimator="independence"
        )
        assert result.executed
        assert result.report.observations
        assert all(obs.q_error >= 1.0 for obs in result.report.observations)
        # physical labels replaced the logical "Join"
        operators = {obs.operator for obs in result.report.observations}
        assert operators <= {
            "HashJoin",
            "NestedLoopJoin",
            "SortMergeJoin",
            "CrossProduct",
        }

    def test_no_tables_means_plan_only(self):
        result = run_pipeline(WORKLOAD.queries[1].sql, execute=False)
        assert not result.executed
        assert result.report is None
        assert result.physical_plan is not None

    def test_estimator_strategies_agree_on_result_rows(self):
        query = WORKLOAD.queries[1]
        independence = run_pipeline(
            query.sql, tables=WORKLOAD.tables, estimator="independence"
        )
        statistics = run_pipeline(
            query.sql, tables=WORKLOAD.tables, estimator="statistics"
        )
        # different estimates, same query semantics
        assert (
            independence.report.result_rows == statistics.report.result_rows
        )

    def test_statistics_beats_independence_on_skewed_workload(self):
        pooled = {"independence": [], "statistics": []}
        for query in WORKLOAD.queries:
            for estimator in pooled:
                result = run_pipeline(
                    query.sql, tables=WORKLOAD.tables, estimator=estimator
                )
                pooled[estimator].extend(
                    obs.q_error for obs in result.report.observations
                )
        assert median(pooled["statistics"]) < median(pooled["independence"])

    def test_filters_shrink_actual_results(self):
        filtered_query = next(
            q for q in WORKLOAD.queries if q.name == "filtered_parts"
        )
        result = run_pipeline(
            filtered_query.sql, tables=WORKLOAD.tables, estimator="statistics"
        )
        unfiltered_lineitem = len(WORKLOAD.tables["lineitem"])
        # the filtered join cannot produce more rows than exist pre-filter
        assert result.report.result_rows <= unfiltered_lineitem * 50


class TestPlanServiceSql:
    def test_plan_sql_caches_repeated_text(self):
        with PlanService() as service:
            first = service.plan_sql(WORKLOAD.queries[1].sql)
            second = service.plan_sql(WORKLOAD.queries[1].sql)
        assert first.plan is not None
        assert not first.cache_hit
        assert second.cache_hit

    def test_estimators_do_not_share_cache_entries(self):
        query = WORKLOAD.queries[1]
        with PlanService() as service:
            independence = service.plan_sql(query.sql)
            statistics = service.plan_sql(
                query.sql, tables=WORKLOAD.tables, estimator="statistics"
            )
        assert not statistics.cache_hit
        assert independence.cost != statistics.cost


class TestCli:
    def test_single_query_mode(self, capsys):
        exit_code = main(
            [
                "pipeline",
                "--query",
                "orders_chain",
                "--scale",
                "0.1",
                "--estimator",
                "both",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "independence" in out and "statistics" in out

    def test_battery_writes_artifact_and_gates(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_pipeline.json"
        exit_code = main(
            ["pipeline", "--scale", "0.1", "--json-out", str(artifact)]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "estimation-accuracy gate: pass" in out
        results = json.loads(artifact.read_text())
        assert results["benchmark"] == "pipeline_estimation_accuracy"
        assert results["differential_plan_identity"] is True
        aggregate = results["aggregate"]
        assert (
            aggregate["statistics"]["median_q_error"]
            < aggregate["independence"]["median_q_error"]
        )
