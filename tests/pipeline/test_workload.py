"""The skewed TPC-H-shaped workload generator."""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.frontend.parser import parse_query_detailed
from repro.pipeline import tpch_workload, zipf_choices


class TestZipfChoices:
    def test_deterministic_under_seed(self):
        assert zipf_choices(random.Random(5), 20, 100) == zipf_choices(
            random.Random(5), 20, 100
        )

    def test_skew_concentrates_mass_on_low_ranks(self):
        values = zipf_choices(random.Random(1), 100, 10000, skew=1.2)
        counts = Counter(values)
        top = counts.most_common(1)[0]
        assert top[0] == 0
        assert top[1] > 10000 / 100 * 5  # far above the uniform share

    def test_rejects_empty_domain(self):
        with pytest.raises(WorkloadError, match="at least one"):
            zipf_choices(random.Random(0), 0, 10)


class TestTpchWorkload:
    def test_deterministic_under_seed(self):
        first = tpch_workload(scale=0.1, seed=9)
        second = tpch_workload(scale=0.1, seed=9)
        assert first.tables == second.tables
        assert first.queries == second.queries

    def test_sizes_scale(self):
        small = tpch_workload(scale=0.1).table_sizes()
        full = tpch_workload(scale=1.0).table_sizes()
        assert full["lineitem"] == 20000
        assert small["lineitem"] == 2000
        assert full["nation"] == small["nation"] == 25

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(WorkloadError, match="positive"):
            tpch_workload(scale=0.0)

    def test_queries_parse_and_annotate_actual_cardinalities(self):
        workload = tpch_workload(scale=0.25, seed=3)
        sizes = workload.table_sizes()
        for query in workload.queries:
            parsed = parse_query_detailed(query.sql)
            for index, name in enumerate(parsed.graph.names):
                assert parsed.catalog.cardinality(index) == sizes[name], (
                    query.name,
                    name,
                )

    def test_foreign_keys_reference_existing_parents(self):
        workload = tpch_workload(scale=0.1, seed=2)
        customers = {row["custkey"] for row in workload.tables["customer"]}
        assert {
            row["custkey"] for row in workload.tables["orders"]
        } <= customers

    def test_fk_columns_are_skewed(self):
        workload = tpch_workload(scale=0.5, seed=4)
        counts = Counter(row["custkey"] for row in workload.tables["orders"])
        uniform_share = len(workload.tables["orders"]) / len(
            workload.tables["customer"]
        )
        assert counts.most_common(1)[0][1] > 5 * uniform_share
