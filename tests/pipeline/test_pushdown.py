"""prepare_query / apply_filters: the pushdown pass."""

import pytest

from repro.errors import CatalogError
from repro.frontend.parser import parse_query, parse_query_detailed
from repro.pipeline import prepare_query, apply_filters

PLAIN_SQL = """
SELECT * FROM a (100), b (50), c (20)
WHERE a.x = b.x [0.1] AND b.y = c.y [0.2]
"""

FILTERED_SQL = """
SELECT * FROM a (100), b (50)
WHERE a.x = b.x [0.1] AND a.v < 5 [0.3]
"""

TABLES = {
    "a": [{"x": i % 5, "v": i % 10} for i in range(100)],
    "b": [{"x": i % 5, "y": i % 4} for i in range(50)],
    "c": [{"y": i % 4} for i in range(20)],
}


class TestIndependence:
    def test_filter_free_query_is_bit_identical_to_parse(self):
        prepared = prepare_query(PLAIN_SQL)
        graph, catalog = parse_query(PLAIN_SQL)
        assert prepared.graph == graph
        # identical object: no effective-catalog rebuild happened
        assert prepared.catalog is prepared.parsed.catalog
        assert prepared.catalog.cardinalities() == catalog.cardinalities()
        assert prepared.filter_factors == {}

    def test_annotated_filter_scales_base_cardinality(self):
        prepared = prepare_query(FILTERED_SQL)
        assert prepared.filter_factors == {0: pytest.approx(0.3)}
        assert prepared.catalog.cardinality(0) == pytest.approx(30.0)
        assert prepared.catalog.cardinality(1) == 50.0

    def test_unannotated_filter_uses_default(self):
        sql = "SELECT * FROM a (100), b (50) WHERE a.x = b.x AND a.v < 5"
        prepared = prepare_query(sql, default_filter_selectivity=0.2)
        assert prepared.catalog.cardinality(0) == pytest.approx(20.0)

    def test_join_columns_keyed_by_edge_position(self):
        prepared = prepare_query(PLAIN_SQL)
        columns = {
            prepared.graph.edges[pos].endpoints: cols
            for pos, cols in prepared.join_columns.items()
        }
        a, b, c = (prepared.graph.index_of(n) for n in ("a", "b", "c"))
        assert columns[tuple(sorted((a, b)))] == ("x", "x")
        assert columns[tuple(sorted((b, c)))] == ("y", "y")


class TestStatistics:
    def test_needs_rows_or_catalog(self):
        with pytest.raises(CatalogError, match="statistics estimator needs"):
            prepare_query(PLAIN_SQL, estimator="statistics")

    def test_missing_table_reported_by_name(self):
        with pytest.raises(CatalogError, match="'c'"):
            prepare_query(
                PLAIN_SQL,
                tables={"a": TABLES["a"], "b": TABLES["b"]},
                estimator="statistics",
            )

    def test_refines_selectivities_from_rows(self):
        prepared = prepare_query(PLAIN_SQL, tables=TABLES, estimator="statistics")
        # a.x = b.x : both sides uniform over 5 values -> 1/5, not 0.1
        a, b = prepared.graph.index_of("a"), prepared.graph.index_of("b")
        edge = next(
            e
            for e in prepared.graph.edges
            if e.endpoints == tuple(sorted((a, b)))
        )
        assert edge.selectivity == pytest.approx(0.2, rel=0.05)
        # cardinalities come from the actual row counts
        assert prepared.catalog.cardinality(a) == 100.0

    def test_warm_stats_catalog_skips_analysis(self):
        from repro.stats import analyze_tables

        warm = analyze_tables({name: TABLES[name] for name in ("a", "b", "c")})
        cold = prepare_query(PLAIN_SQL, tables=TABLES, estimator="statistics")
        warmed = prepare_query(
            PLAIN_SQL, estimator="statistics", stats_catalog=warm
        )
        assert warmed.graph == cold.graph
        assert warmed.catalog.cardinalities() == cold.catalog.cardinalities()

    def test_unknown_estimator_rejected(self):
        with pytest.raises(CatalogError, match="unknown estimator"):
            prepare_query(PLAIN_SQL, estimator="oracle")


class TestApplyFilters:
    def test_filters_restrict_their_table_only(self):
        parsed = parse_query_detailed(FILTERED_SQL)
        filtered = apply_filters(parsed, {"a": TABLES["a"], "b": TABLES["b"]})
        assert all(row["v"] < 5 for row in filtered["a"])
        assert len(filtered["a"]) == 50
        assert len(filtered["b"]) == len(TABLES["b"])

    def test_rows_missing_the_column_are_dropped(self):
        parsed = parse_query_detailed(FILTERED_SQL)
        rows = [{"x": 1, "v": 0}, {"x": 2}, {"x": 3, "v": "n/a"}]
        filtered = apply_filters(parsed, {"a": rows, "b": TABLES["b"]})
        assert filtered["a"] == [{"x": 1, "v": 0}]

    def test_equality_filter(self):
        sql = "SELECT * FROM a (100), b (50) WHERE a.x = b.x AND a.v = 3"
        parsed = parse_query_detailed(sql)
        filtered = apply_filters(parsed, {"a": TABLES["a"], "b": TABLES["b"]})
        assert {row["v"] for row in filtered["a"]} == {3}
