"""Physical operator selection over optimized join trees."""

import pytest

from repro.cost.disk import (
    DEFAULT_BUFFER_PAGES,
    cheapest_join_operator,
)
from repro.pipeline import operator_choices, select_operators
from repro.plans.jointree import JoinTree


def tree(outer_card, inner_card, out_card=100.0):
    outer = JoinTree.leaf(0, cardinality=outer_card, cost=0.0, name="outer")
    inner = JoinTree.leaf(1, cardinality=inner_card, cost=0.0, name="inner")
    return JoinTree.join(
        outer, inner, cardinality=out_card, cost=out_card, operator="Join"
    )


class TestCheapestJoinOperator:
    def test_tiny_inner_prefers_nested_loops(self):
        # inner fits the buffer: NLJ costs outer * (1 + inner/buffer)
        # ~ outer, cheaper than touching both inputs again.
        _cost, operator = cheapest_join_operator(1000.0, 10.0)
        assert operator == "NestedLoopJoin"

    def test_large_equal_inputs_prefer_hash(self):
        _cost, operator = cheapest_join_operator(50000.0, 50000.0)
        assert operator == "HashJoin"

    def test_costs_match_their_formulas(self):
        outer, inner = 5000.0, 4000.0
        cost, operator = cheapest_join_operator(outer, inner)
        nlj = outer + outer * inner / DEFAULT_BUFFER_PAGES
        hj = 3.0 * (outer + inner)
        assert cost == pytest.approx(min(nlj, hj), rel=0.5)
        assert cost <= nlj and cost <= hj

    def test_operator_depends_on_buffer_size(self):
        big_buffer = cheapest_join_operator(1000.0, 1000.0, buffer_pages=10**6)
        tiny_buffer = cheapest_join_operator(1000.0, 1000.0, buffer_pages=1)
        assert big_buffer[1] == "NestedLoopJoin"
        assert tiny_buffer[1] != "NestedLoopJoin"


class TestSelectOperators:
    def test_relabels_joins_preserving_shape_and_numbers(self):
        plan = tree(1000.0, 10.0)
        physical = select_operators(plan)
        assert physical.operator == "NestedLoopJoin"
        assert physical.cardinality == plan.cardinality
        assert physical.cost == plan.cost
        assert physical.relations == plan.relations
        assert physical.left.name == "outer"

    def test_leaf_passes_through(self):
        leaf = JoinTree.leaf(0, cardinality=5.0, cost=0.0, name="r")
        assert select_operators(leaf) is leaf

    def test_nested_tree_labels_every_join(self):
        inner_join = tree(50000.0, 50000.0, out_card=80000.0)
        top = JoinTree.join(
            inner_join,
            JoinTree.leaf(2, cardinality=5.0, cost=0.0, name="dim"),
            cardinality=80000.0,
            cost=1.0,
            operator="Join",
        )
        physical = select_operators(top)
        assert physical.left.operator == "HashJoin"
        assert physical.operator == "NestedLoopJoin"

    def test_operator_choices_reports_bottom_up(self):
        inner_join = tree(50000.0, 50000.0, out_card=80000.0)
        top = JoinTree.join(
            inner_join,
            JoinTree.leaf(2, cardinality=5.0, cost=0.0, name="dim"),
            cardinality=80000.0,
            cost=1.0,
            operator="Join",
        )
        choices = operator_choices(top)
        assert [choice.operator for choice in choices] == [
            "HashJoin",
            "NestedLoopJoin",
        ]
        assert choices[0].relations == inner_join.relations
        assert choices[1].outer_cardinality == 80000.0
        assert choices[1].inner_cardinality == 5.0
