"""StatisticsEstimator: selectivity formulas and enumerator compatibility."""

import random
from dataclasses import dataclass

import pytest

from repro.catalog.columnstats import ColumnStats
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.cout import CoutModel
from repro.errors import CatalogError, OptimizerError
from repro.graph.builder import QueryGraphBuilder
from repro.hyper import DPhyp, HyperCoutModel, Hypergraph
from repro.core import ALGORITHMS, make_algorithm
from repro.stats import (
    DEFAULT_FILTER_SELECTIVITY,
    StatisticsEstimator,
    analyze,
    analyze_column,
    equijoin_selectivity,
    filter_factors,
    filter_selectivity,
    infer_join_columns,
)


@dataclass(frozen=True)
class Filter:
    alias: str
    column: str
    op: str
    value: float
    selectivity: float | None = None


def uniform_stats(column, ndv, rows=None):
    rows = rows if rows is not None else ndv
    return analyze_column(column, [i % ndv for i in range(rows)])


class TestEquijoinSelectivity:
    def test_uniform_columns_give_textbook_one_over_max_ndv(self):
        left = uniform_stats("k", 40, rows=400)
        right = uniform_stats("k", 10, rows=100)
        assert equijoin_selectivity(left, right) == pytest.approx(
            1 / 40, rel=0.1
        )

    def test_symmetric(self):
        left = uniform_stats("k", 40, rows=400)
        right = uniform_stats("k", 10, rows=100)
        assert equijoin_selectivity(left, right) == pytest.approx(
            equijoin_selectivity(right, left)
        )

    def test_disjoint_ranges_collapse_to_minimum(self):
        left = analyze_column("k", list(range(0, 100)))
        right = analyze_column("k", list(range(1000, 1100)))
        assert equijoin_selectivity(left, right) < 1e-6

    def test_mcv_overlap_tracks_skewed_join_mass(self):
        # 90% of fact rows reference key 0; the independence formula
        # 1/max(ndv) = 1/10 misses the mass concentration badly.
        fact = analyze_column("fk", [0] * 900 + [i % 10 for i in range(100)])
        dim = analyze_column("pk", list(range(10)))
        estimated = equijoin_selectivity(fact, dim)
        values = [0] * 900 + [i % 10 for i in range(100)]
        true = sum(values.count(v) * 1 for v in range(10)) / (len(values) * 10)
        assert estimated == pytest.approx(true, rel=0.05)

    def test_fk_join_recovers_one_over_parent(self):
        rng = random.Random(3)
        fk = analyze_column("fk", [rng.randrange(50) for _ in range(2000)])
        pk = analyze_column("pk", list(range(50)))
        assert equijoin_selectivity(fk, pk) == pytest.approx(1 / 50, rel=0.1)

    def test_empty_side_gives_floor(self):
        empty = ColumnStats("k", 0, 0, 0.0, 0.0)
        other = uniform_stats("k", 5)
        assert equijoin_selectivity(empty, other) == pytest.approx(1e-12)


class TestFilterSelectivity:
    def test_no_stats_uses_default(self):
        assert filter_selectivity(None, "=", 3.0) == DEFAULT_FILTER_SELECTIVITY
        assert filter_selectivity(None, "<", 3.0, default=0.25) == 0.25

    def test_equality_from_mcv(self):
        stats = analyze_column("k", [7] * 60 + list(range(40)))
        assert filter_selectivity(stats, "=", 7.0) == pytest.approx(
            61 / 100, rel=0.05
        )

    def test_range_operators_partition_the_domain(self):
        stats = analyze_column("k", list(range(100)))
        below = filter_selectivity(stats, "<", 30.0)
        at_or_below = filter_selectivity(stats, "<=", 30.0)
        above = filter_selectivity(stats, ">", 30.0)
        at_or_above = filter_selectivity(stats, ">=", 30.0)
        assert below == pytest.approx(0.3, abs=0.03)
        assert at_or_below >= below
        assert below + at_or_above == pytest.approx(1.0)
        assert at_or_below + above == pytest.approx(1.0)

    def test_unknown_operator_rejected(self):
        with pytest.raises(CatalogError, match="operator"):
            filter_selectivity(None, "!=", 1.0)

    def test_never_returns_zero(self):
        stats = analyze_column("k", list(range(100)))
        assert filter_selectivity(stats, "<", -5.0) > 0.0


def star_instance():
    """fact(4000) -- dim_a(40), dim_b(10); fact.a/b skewed to value 0."""
    rng = random.Random(11)
    graph, _ = (
        QueryGraphBuilder()
        .relation("fact", 4000)
        .relation("dim_a", 40)
        .relation("dim_b", 10)
        .join("fact", "dim_a", 0.5, predicate="fact.a = dim_a.a")
        .join("fact", "dim_b", 0.5, predicate="fact.b = dim_b.b")
        .build()
    )
    tables = [
        [
            {
                "a": 0 if rng.random() < 0.5 else rng.randrange(40),
                "b": rng.randrange(10),
            }
            for _ in range(4000)
        ],
        [{"a": i} for i in range(40)],
        [{"b": i} for i in range(10)],
    ]
    catalog = analyze(graph, tables)
    return graph, catalog


class TestInferJoinColumns:
    def test_predicates_map_to_column_pairs(self):
        graph, _catalog = star_instance()
        columns = infer_join_columns(graph)
        assert columns[(0, 1)] == ("a", "a")
        assert columns[(0, 2)] == ("b", "b")

    def test_column_order_follows_index_order(self):
        graph, _ = (
            QueryGraphBuilder()
            .relation("x", 10)
            .relation("y", 10)
            .join("y", "x", 0.1, predicate="y.right_col = x.left_col")
            .build()
        )
        columns = infer_join_columns(graph)
        low, high = min(graph.index_of("x"), graph.index_of("y")), None
        # the pair is keyed by normalized endpoints with columns aligned
        (pair, cols), = columns.items()
        assert pair == tuple(sorted(pair))
        names = {graph.index_of("x"): "left_col", graph.index_of("y"): "right_col"}
        assert cols == (names[pair[0]], names[pair[1]])

    def test_unparseable_predicate_absent(self):
        graph, _ = (
            QueryGraphBuilder()
            .relation("x", 10)
            .relation("y", 10)
            .join("x", "y", 0.1, predicate="complex_udf(x, y)")
            .build()
        )
        assert infer_join_columns(graph) == {}


class TestFilterFactors:
    def test_annotation_wins_over_stats(self):
        graph, catalog = star_instance()
        factors = filter_factors(
            graph, catalog, [Filter("dim_a", "a", "<", 4.0, selectivity=0.5)]
        )
        assert factors == {1: 0.5}

    def test_stats_answer_unannotated_filters(self):
        graph, catalog = star_instance()
        factors = filter_factors(graph, catalog, [Filter("dim_a", "a", "<", 4.0)])
        assert factors[1] == pytest.approx(0.1, abs=0.05)

    def test_conjunctive_filters_multiply(self):
        graph, catalog = star_instance()
        factors = filter_factors(
            graph,
            catalog,
            [
                Filter("fact", "a", "<", 20.0, selectivity=0.5),
                Filter("fact", "b", "<", 5.0, selectivity=0.4),
            ],
        )
        assert factors[0] == pytest.approx(0.2)


class TestStatisticsEstimator:
    def test_refines_edges_and_keeps_topology(self):
        graph, catalog = star_instance()
        estimator = StatisticsEstimator(graph, catalog)
        assert estimator.refined_edge_count == 2
        refined_graph, effective_catalog = estimator.refined_instance()
        assert refined_graph.n_relations == graph.n_relations
        assert {e.endpoints for e in refined_graph.edges} == {
            e.endpoints for e in graph.edges
        }
        # the skewed fact.a edge must move off the annotated 0.5
        refined = {e.endpoints: e.selectivity for e in refined_graph.edges}
        assert refined[(0, 1)] != 0.5
        assert estimator.source_graph is graph

    def test_filters_scale_effective_cardinalities(self):
        graph, catalog = star_instance()
        estimator = StatisticsEstimator(
            graph, catalog, filters=[Filter("fact", "b", "<", 5.0)]
        )
        _, effective = estimator.refined_instance()
        assert effective.cardinality(0) < catalog.cardinality(0)
        assert effective.cardinality(1) == catalog.cardinality(1)

    def test_estimates_beat_independence_on_skew(self):
        graph, catalog = star_instance()
        independence = CardinalityEstimator(graph, catalog)
        stats = StatisticsEstimator(graph, catalog)
        # true |fact ⋈ dim_a| == |fact| (every fk matches one pk)
        true_join = catalog.cardinality(0)
        mask = 0b011
        assert abs(stats.set_cardinality(mask) - true_join) < abs(
            independence.set_cardinality(mask) - true_join
        )

    def test_catalog_size_mismatch_rejected(self):
        graph, _ = star_instance()
        from repro.catalog.catalog import Catalog

        with pytest.raises(CatalogError, match="relations"):
            StatisticsEstimator(graph, Catalog.uniform(2))

    def test_works_with_every_registered_enumerator(self):
        graph, catalog = star_instance()
        estimator = StatisticsEstimator(graph, catalog)
        refined_graph, effective_catalog = estimator.refined_instance()
        costs = {
            name: make_algorithm(name)
            .optimize(refined_graph, catalog=effective_catalog)
            .cost
            for name in ALGORITHMS
        }
        # dpall admits cross products, so it can be cheaper; compare
        # only the cross-product-free exact enumerators.
        exact = {
            name: cost
            for name, cost in costs.items()
            if name in ("dpsize", "dpsub", "dpccp", "dpsize-basic", "dpsub-basic")
        }
        assert len(exact) >= 3
        reference = costs["dpccp"]
        for name, cost in exact.items():
            assert cost == pytest.approx(reference), name

    def test_works_with_dphyp(self):
        graph, catalog = star_instance()
        estimator = StatisticsEstimator(graph, catalog)
        refined_graph, effective_catalog = estimator.refined_instance()
        hypergraph = Hypergraph.from_query_graph(refined_graph)
        plan = DPhyp().optimize(
            hypergraph, cost_model=HyperCoutModel(hypergraph, effective_catalog)
        )
        reference = make_algorithm("dpccp").optimize(
            refined_graph, catalog=effective_catalog
        )
        assert plan.cost == pytest.approx(reference.cost)


class TestCostModelEstimatorParam:
    def test_estimator_injection(self):
        graph, catalog = star_instance()
        estimator = StatisticsEstimator(graph, catalog)
        model = CoutModel(estimator=estimator)
        assert model.estimator is estimator
        assert model.estimator.set_cardinality(0b011) == estimator.set_cardinality(0b011)

    def test_conflicting_graph_rejected(self):
        graph, catalog = star_instance()
        other_graph, other_catalog = (
            QueryGraphBuilder()
            .relation("p", 10)
            .relation("q", 10)
            .join("p", "q", 0.1)
            .build()
        )
        estimator = StatisticsEstimator(graph, catalog)
        with pytest.raises(OptimizerError, match="conflicting"):
            CoutModel(other_graph, estimator=estimator)

    def test_neither_graph_nor_estimator_rejected(self):
        with pytest.raises(OptimizerError, match="graph or an estimator"):
            CoutModel()
