"""ColumnStats: validation, distribution queries, serialization."""

import pytest

from repro.catalog.columnstats import ColumnStats
from repro.errors import CatalogError


def make_stats(**overrides):
    defaults = dict(
        column="c",
        row_count=100,
        ndv=10,
        min_value=0.0,
        max_value=9.0,
    )
    defaults.update(overrides)
    return ColumnStats(**defaults)


class TestValidation:
    def test_negative_row_count_rejected(self):
        with pytest.raises(CatalogError, match="row_count"):
            make_stats(row_count=-1)

    def test_ndv_exceeding_rows_rejected(self):
        with pytest.raises(CatalogError, match="ndv"):
            make_stats(row_count=5, ndv=6)

    def test_min_above_max_rejected(self):
        with pytest.raises(CatalogError, match="min"):
            make_stats(min_value=10.0, max_value=9.0)

    def test_mcv_fraction_out_of_range_rejected(self):
        with pytest.raises(CatalogError, match="MCV"):
            make_stats(mcvs=((1.0, 0.0),))
        with pytest.raises(CatalogError, match="MCV"):
            make_stats(mcvs=((1.0, 1.5),))

    def test_mcv_fractions_summing_above_one_rejected(self):
        with pytest.raises(CatalogError, match="sum"):
            make_stats(mcvs=((1.0, 0.6), (2.0, 0.6)))

    def test_descending_histogram_rejected(self):
        with pytest.raises(CatalogError, match="ascend"):
            make_stats(histogram=(0.0, 5.0, 3.0))

    def test_is_hashable(self):
        assert isinstance(hash(make_stats(mcvs=((1.0, 0.3),))), int)


class TestEqualityFraction:
    def test_mcv_hit_returns_measured_fraction(self):
        stats = make_stats(mcvs=((3.0, 0.4),))
        assert stats.equality_fraction(3) == 0.4

    def test_non_mcv_value_shares_remainder_uniformly(self):
        stats = make_stats(mcvs=((3.0, 0.4),))
        # 0.6 mass over 9 remaining distinct values
        assert stats.equality_fraction(5) == pytest.approx(0.6 / 9)

    def test_out_of_range_value_matches_nothing(self):
        stats = make_stats()
        assert stats.equality_fraction(-1) == 0.0
        assert stats.equality_fraction(100) == 0.0

    def test_no_mcvs_uniform_over_ndv(self):
        stats = make_stats()
        assert stats.equality_fraction(4) == pytest.approx(1 / 10)

    def test_empty_column(self):
        stats = make_stats(row_count=0, ndv=0)
        assert stats.equality_fraction(1) == 0.0


class TestFractionBelow:
    def test_uniform_fallback_without_histogram(self):
        stats = make_stats(min_value=0.0, max_value=10.0)
        assert stats.fraction_below(5.0) == pytest.approx(0.5)

    def test_boundaries(self):
        stats = make_stats(min_value=0.0, max_value=10.0)
        assert stats.fraction_below(0.0, inclusive=False) == 0.0
        assert stats.fraction_below(10.0, inclusive=True) == 1.0
        assert stats.fraction_below(-5.0) == 0.0
        assert stats.fraction_below(50.0) == 1.0

    def test_equi_depth_histogram_interpolation(self):
        # 4 buckets over [0, 8]: bounds at 0, 2, 4, 6, 8
        stats = make_stats(
            min_value=0.0, max_value=8.0, histogram=(0.0, 2.0, 4.0, 6.0, 8.0)
        )
        assert stats.fraction_below(4.0) == pytest.approx(0.5)
        assert stats.fraction_below(3.0) == pytest.approx(0.375)
        # halfway into the first bucket
        assert stats.fraction_below(1.0) == pytest.approx(0.125)

    def test_skewed_histogram_beats_uniform_assumption(self):
        # 90% of mass below 1.0: equi-depth bounds crowd the low end.
        stats = make_stats(
            min_value=0.0,
            max_value=100.0,
            histogram=(0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 1.0, 10.0, 50.0, 100.0),
        )
        assert stats.fraction_below(1.0, inclusive=True) > 0.6

    def test_fraction_between(self):
        stats = make_stats(min_value=0.0, max_value=10.0)
        assert stats.fraction_between(2.0, 7.0) == pytest.approx(0.5)
        assert stats.fraction_between(7.0, 2.0) == 0.0


class TestSerialization:
    def test_round_trip(self):
        stats = make_stats(
            mcvs=((3.0, 0.4), (7.0, 0.2)),
            histogram=(0.0, 3.0, 6.0, 9.0),
        )
        assert ColumnStats.from_dict(stats.to_dict()) == stats

    def test_malformed_dict_raises_catalog_error(self):
        with pytest.raises(CatalogError, match="malformed"):
            ColumnStats.from_dict({"column": "c"})
