"""The ANALYZE pass: column stats built from actual rows."""

import random

import pytest

from repro.catalog.catalog import Catalog
from repro.errors import CatalogError
from repro.graph.builder import QueryGraphBuilder
from repro.stats import (
    analyze,
    analyze_column,
    analyze_rows,
    analyze_tables,
)


class TestAnalyzeColumn:
    def test_exact_counts_and_extremes(self):
        stats = analyze_column("k", [3, 1, 2, 2, 5])
        assert stats.row_count == 5
        assert stats.ndv == 4
        assert stats.min_value == 1.0
        assert stats.max_value == 5.0

    def test_uniform_column_gets_no_mcvs(self):
        stats = analyze_column("k", list(range(200)))
        assert stats.mcvs == ()

    def test_skewed_column_gets_mcvs_with_measured_mass(self):
        values = [0] * 500 + list(range(1, 101))
        stats = analyze_column("k", values)
        assert stats.mcvs
        assert stats.mcvs[0] == (0.0, pytest.approx(500 / 600))

    def test_histogram_built_only_above_bucket_count(self):
        few = analyze_column("k", list(range(10)))
        assert few.histogram == ()
        many = analyze_column("k", list(range(100)))
        assert len(many.histogram) >= 2
        assert many.histogram[0] == 0.0
        assert many.histogram[-1] == 99.0

    def test_equi_depth_histogram_tracks_skew(self):
        rng = random.Random(7)
        values = [rng.random() for _ in range(900)] + [
            50 + rng.random() * 50 for _ in range(100)
        ]
        stats = analyze_column("k", values)
        # 90% of mass sits below 1.0, and the histogram knows it.
        assert stats.fraction_below(1.0, inclusive=True) == pytest.approx(
            0.9, abs=0.05
        )

    def test_zero_values_rejected(self):
        with pytest.raises(CatalogError, match="zero values"):
            analyze_column("k", [])


class TestAnalyzeRows:
    def test_analyzes_every_numeric_column(self):
        rows = [{"a": i, "b": i % 3, "label": "x"} for i in range(20)]
        stats = {entry.column: entry for entry in analyze_rows(rows)}
        assert set(stats) == {"a", "b"}
        assert stats["a"].ndv == 20
        assert stats["b"].ndv == 3

    def test_booleans_and_strings_skipped(self):
        rows = [{"flag": True, "name": "n"} for _ in range(5)]
        assert analyze_rows(rows) == ()

    def test_column_restriction(self):
        rows = [{"a": i, "b": i} for i in range(5)]
        stats = analyze_rows(rows, columns=["b"])
        assert [entry.column for entry in stats] == ["b"]


class TestAnalyzeTables:
    def test_builds_stats_backed_catalog(self):
        tables = {
            "orders": [{"okey": i, "custkey": i % 4} for i in range(40)],
            "customer": [{"custkey": i} for i in range(4)],
        }
        catalog = analyze_tables(tables)
        assert isinstance(catalog, Catalog)
        assert catalog.cardinality(0) == 40.0
        assert catalog.cardinality(1) == 4.0
        assert catalog.column_stats(0, "custkey").ndv == 4
        assert catalog.has_column_stats()

    def test_empty_collection_rejected(self):
        with pytest.raises(CatalogError, match="empty"):
            analyze_tables({})

    def test_empty_table_rejected(self):
        with pytest.raises(CatalogError, match="no rows"):
            analyze_tables({"t": []})


class TestAnalyzeGraphAligned:
    def test_names_come_from_graph(self):
        graph, _ = (
            QueryGraphBuilder()
            .relation("a", 10)
            .relation("b", 20)
            .join("a", "b", 0.1)
            .build()
        )
        tables = [
            [{"x": i} for i in range(10)],
            [{"x": i} for i in range(20)],
        ]
        catalog = analyze(graph, tables)
        assert catalog[0].name == "a"
        assert catalog.cardinality(1) == 20.0
        assert catalog.column_stats(0, "x") is not None

    def test_misaligned_table_count_rejected(self):
        graph, _ = (
            QueryGraphBuilder()
            .relation("a", 10)
            .relation("b", 20)
            .join("a", "b", 0.1)
            .build()
        )
        with pytest.raises(CatalogError, match="2 relations"):
            analyze(graph, [[{"x": 1}]])
