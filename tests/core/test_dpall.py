"""Unit tests for DPall (bushy trees with cross products)."""

from __future__ import annotations

import random

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.synthetic import random_catalog
from repro.core import DPall, DPccp
from repro.errors import OptimizerError
from repro.graph.generators import chain_graph, random_connected_graph
from repro.graph.querygraph import QueryGraph
from repro.plans.visitors import validate_plan


class TestCounters:
    @pytest.mark.parametrize("n", [2, 3, 5, 7, 9])
    def test_inner_counter_graph_independent(self, paper_topology, n):
        """All splits of all subsets: 3^n - 2^{n+1} + 1, any topology."""
        if paper_topology == "cycle" and n == 2:
            pytest.skip("2-cycle degenerates to chain")
        from tests.conftest import graph_of

        graph = graph_of(paper_topology, n)
        result = DPall().optimize(graph)
        assert result.counters.inner_counter == 3**n - 2 ** (n + 1) + 1

    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_table_covers_all_subsets(self, n):
        result = DPall().optimize(chain_graph(n))
        assert result.table_size == 2**n - 1

    def test_size_guard(self):
        from repro.core.dpsub import MAX_RELATIONS

        with pytest.raises(OptimizerError):
            DPall().optimize(chain_graph(MAX_RELATIONS + 1))


class TestSearchSpaceRelation:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_worse_than_cross_product_free(self, seed):
        """The larger space can only help: DPall.cost <= DPccp.cost."""
        rng = random.Random(seed)
        n = rng.randint(2, 8)
        graph = random_connected_graph(n, rng, rng.random() * 0.6)
        catalog = random_catalog(n, rng)
        with_cross = DPall().optimize(graph, catalog=catalog)
        without = DPccp().optimize(graph, catalog=catalog)
        assert with_cross.cost <= without.cost * (1 + 1e-12)

    def test_cross_product_can_win(self):
        """The classic instance: tiny relations at opposite chain ends.

        Chain t1 - big - t2 with |t1| = |t2| = 2 and |big| = 1e6 and
        weak selectivities: crossing t1 x t2 first (4 rows) then
        joining big once beats any connected order.
        """
        graph = QueryGraph(3, [(0, 1, 0.5), (1, 2, 0.5)])
        catalog = Catalog.from_cardinalities([2, 1_000_000, 2])
        with_cross = DPall().optimize(graph, catalog=catalog)
        without = DPccp().optimize(graph, catalog=catalog)
        assert with_cross.cost < without.cost
        validate_plan(
            with_cross.plan, graph, forbid_cross_products=False
        )

    def test_fk_chain_needs_no_cross_products(self):
        """On foreign-key chains the optima coincide."""
        graph = chain_graph(6, selectivity=0.001)
        catalog = Catalog.from_cardinalities([1000] * 6)
        assert DPall().optimize(graph, catalog=catalog).cost == pytest.approx(
            DPccp().optimize(graph, catalog=catalog).cost
        )


class TestDisconnectedGraphs:
    def test_handles_disconnected_graph(self):
        """DPall is the only algorithm that can plan disconnected queries."""
        graph = QueryGraph(4, [(0, 1, 0.1), (2, 3, 0.1)])
        assert not graph.is_connected
        result = DPall().optimize(graph, catalog=Catalog.uniform(4, 100.0))
        validate_plan(result.plan, graph, forbid_cross_products=False)
        assert result.plan.size == 4

    def test_plan_valid_modulo_cross_products(self, rng):
        for _ in range(6):
            n = rng.randint(2, 7)
            graph = random_connected_graph(n, rng, rng.random() * 0.5)
            result = DPall().optimize(graph, catalog=random_catalog(n, rng))
            validate_plan(result.plan, graph, forbid_cross_products=False)
