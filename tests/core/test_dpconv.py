"""Unit tests for the DPconv subset-convolution enumerator.

The differential battery (``tests/test_differential_optimal.py``) pins
DPconv's optima to the exhaustive oracle; this module pins everything
else: backend equivalence (the numpy and stdlib sweeps must produce the
same costs *and* the same counters), the priced fallback for
non-separable cost models, backend resolution/validation, and the
counter conventions shared with the paper's algorithms.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import DPconv, DPsub
from repro.core import dpconv as dpconv_module
from repro.cost.disk import DiskCostModel
from repro.errors import OptimizerError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    graph_for_topology,
    random_connected_graph,
    star_graph,
)
from repro.plans.visitors import validate_plan

HAS_NUMPY = dpconv_module._numpy_module() is not None

BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])


def make_dpconv(backend: str) -> DPconv:
    """A DPconv forced onto ``backend`` regardless of query size."""
    return DPconv(backend=backend, vector_min_relations=2)


def normalized_counters(result) -> dict:
    """Counter dict with the backend-identifying flag removed."""
    counters = result.counters.as_dict()
    counters.pop("vectorized", None)
    return counters


class TestOptimality:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "topology", ["chain", "cycle", "star", "clique"]
    )
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 10])
    def test_matches_dpsub_on_paper_topologies(self, backend, topology, n):
        if topology == "cycle" and n < 3:
            pytest.skip("cycle needs n >= 3")
        rng = random.Random(61 * n)
        graph = graph_for_topology(topology, n, rng=rng)
        catalog = random_catalog(n, rng)
        reference = DPsub().optimize(graph, catalog=catalog)
        result = make_dpconv(backend).optimize(graph, catalog=catalog)
        assert result.cost == pytest.approx(reference.cost, rel=1e-12)
        validate_plan(result.plan, graph)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_dpsub_on_random_graphs(self, backend, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 9)
        graph = random_connected_graph(n, rng, rng.random() * 0.8)
        catalog = random_catalog(n, rng)
        reference = DPsub().optimize(graph, catalog=catalog)
        result = make_dpconv(backend).optimize(graph, catalog=catalog)
        assert result.cost == pytest.approx(reference.cost, rel=1e-12)
        validate_plan(result.plan, graph)

    def test_single_relation(self):
        result = DPconv().optimize(chain_graph(1))
        assert result.plan.size == 1
        assert result.counters.create_join_tree_calls == 0


class TestCounters:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_shared_counters_match_dpsub(self, backend, n):
        graph = clique_graph(n, selectivity=0.1)
        reference = DPsub().optimize(graph)
        result = make_dpconv(backend).optimize(graph)
        ours, theirs = result.counters, reference.counters
        assert ours.ono_lohman_counter == theirs.ono_lohman_counter
        assert ours.csg_cmp_pair_counter == theirs.csg_cmp_pair_counter
        assert (
            ours.connectivity_check_failures
            == theirs.connectivity_check_failures
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reconstruction_prices_n_minus_1_joins(self, backend):
        n = 9
        result = make_dpconv(backend).optimize(star_graph(n, selectivity=0.2))
        assert result.counters.create_join_tree_calls == n - 1
        assert result.counters.extra["lattice_passes"] == n - 1
        # leaves + one reconstructed plan per winning split
        assert result.table_size == 2 * n - 1

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not importable")
    @pytest.mark.parametrize("make", [clique_graph, star_graph, cycle_graph])
    def test_backend_parity(self, make):
        """Same costs and same counters from both sweeps, always."""
        graph = make(9, selectivity=0.05)
        python = make_dpconv("python").optimize(graph)
        numpy = make_dpconv("numpy").optimize(graph)
        assert python.cost == numpy.cost
        assert normalized_counters(python) == normalized_counters(numpy)
        assert python.counters.extra["vectorized"] == 0
        assert numpy.counters.extra["vectorized"] == 1


class TestNonSeparableFallback:
    @pytest.mark.parametrize("n", [3, 6, 8])
    def test_disk_model_is_exact(self, n):
        """Asymmetric, non-separable models get the priced enumeration."""
        rng = random.Random(5 * n)
        graph = cycle_graph(n, selectivity=0.2) if n > 2 else chain_graph(n)
        catalog = random_catalog(n, rng)
        reference = DPsub().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        result = DPconv().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        assert result.cost == pytest.approx(reference.cost, rel=1e-12)
        assert result.counters.extra["vectorized"] == 0
        assert (
            result.counters.ono_lohman_counter
            == reference.counters.ono_lohman_counter
        )
        # Both orders priced per valid pair — no value-DP collapse.
        assert (
            result.counters.create_join_tree_calls
            == 2 * result.counters.ono_lohman_counter
        )
        validate_plan(result.plan, graph)


class TestBackendResolution:
    def test_rejects_unknown_backend(self):
        with pytest.raises(OptimizerError, match="backend"):
            DPconv(backend="fortran")

    def test_rejects_bad_vector_threshold(self):
        with pytest.raises(OptimizerError, match="vector_min_relations"):
            DPconv(vector_min_relations=1)

    def test_python_backend_never_resolves_numpy(self):
        assert DPconv(backend="python").resolved_backend(20) == "python"

    @pytest.mark.skipif(not HAS_NUMPY, reason="numpy not importable")
    def test_auto_switches_at_threshold(self):
        engine = DPconv(backend="auto", vector_min_relations=8)
        assert engine.resolved_backend(7) == "python"
        assert engine.resolved_backend(8) == "numpy"

    def test_numpy_backend_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(dpconv_module, "_numpy_module", lambda: None)
        engine = DPconv(backend="numpy")
        with pytest.raises(OptimizerError, match="requires numpy"):
            engine.optimize(chain_graph(4))

    def test_auto_degrades_without_numpy(self, monkeypatch):
        """No numpy anywhere → auto silently uses the stdlib sweep."""
        monkeypatch.setattr(dpconv_module, "_numpy_module", lambda: None)
        engine = DPconv(backend="auto", vector_min_relations=2)
        graph = clique_graph(6, selectivity=0.1)
        result = engine.optimize(graph)
        assert result.counters.extra["vectorized"] == 0
        reference = DPsub().optimize(graph)
        assert result.cost == pytest.approx(reference.cost, rel=1e-12)
