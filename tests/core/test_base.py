"""Unit tests for repro.core.base: PlanTable, CounterSet, JoinOrderer."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog
from repro.core.base import CounterSet, PlanTable
from repro.core.dpccp import DPccp
from repro.cost.cout import CoutModel
from repro.errors import (
    DisconnectedGraphError,
    OptimizerError,
)
from repro.graph.generators import chain_graph
from repro.graph.querygraph import QueryGraph
from repro.plans.jointree import JoinTree


class TestCounterSet:
    def test_defaults_zero(self):
        counters = CounterSet()
        assert counters.inner_counter == 0
        assert counters.csg_cmp_pair_counter == 0
        assert counters.ono_lohman_counter == 0
        assert counters.create_join_tree_calls == 0

    def test_as_dict(self):
        counters = CounterSet(inner_counter=5, csg_cmp_pair_counter=4)
        as_dict = counters.as_dict()
        assert as_dict["inner_counter"] == 5
        assert as_dict["csg_cmp_pair_counter"] == 4
        assert set(as_dict) == {
            "inner_counter",
            "csg_cmp_pair_counter",
            "ono_lohman_counter",
            "create_join_tree_calls",
            "connectivity_check_failures",
        }


class TestPlanTable:
    def test_register_new(self):
        table = PlanTable()
        plan = JoinTree.leaf(0, 10.0, cost=5.0)
        assert table.register(plan)
        assert table.get(0b1) is plan
        assert 0b1 in table
        assert len(table) == 1

    def test_register_cheaper_replaces(self):
        table = PlanTable()
        table.register(JoinTree.leaf(0, 10.0, cost=5.0))
        cheaper = JoinTree.leaf(0, 10.0, cost=1.0)
        assert table.register(cheaper)
        assert table.get(0b1) is cheaper

    def test_register_costlier_keeps_incumbent(self):
        table = PlanTable()
        incumbent = JoinTree.leaf(0, 10.0, cost=1.0)
        table.register(incumbent)
        assert not table.register(JoinTree.leaf(0, 10.0, cost=2.0))
        assert table.get(0b1) is incumbent

    def test_ties_keep_incumbent(self):
        table = PlanTable()
        incumbent = JoinTree.leaf(0, 10.0, cost=1.0)
        table.register(incumbent)
        assert not table.register(JoinTree.leaf(0, 99.0, cost=1.0))
        assert table.get(0b1) is incumbent

    def test_missing_lookup_raises(self):
        table = PlanTable()
        with pytest.raises(OptimizerError):
            table[0b1]
        assert table.get(0b1) is None

    def test_masks(self):
        table = PlanTable()
        table.register(JoinTree.leaf(0, 1.0))
        table.register(JoinTree.leaf(2, 1.0))
        assert sorted(table.masks()) == [0b001, 0b100]


class TestJoinOrdererValidation:
    def test_disconnected_rejected(self):
        graph = QueryGraph(3, [(0, 1)])
        with pytest.raises(DisconnectedGraphError):
            DPccp().optimize(graph)

    def test_single_relation(self):
        result = DPccp().optimize(chain_graph(1))
        assert result.plan.is_leaf
        assert result.counters.inner_counter == 0
        assert result.table_size == 1
        assert result.cost == 0.0

    def test_cost_model_and_catalog_mutually_exclusive(self):
        graph = chain_graph(2)
        model = CoutModel(graph)
        with pytest.raises(OptimizerError):
            DPccp().optimize(graph, cost_model=model, catalog=Catalog.uniform(2))

    def test_result_metadata(self):
        result = DPccp().optimize(chain_graph(4))
        assert result.algorithm == "DPccp"
        assert result.n_relations == 4
        assert result.table_size == 10  # #csg(chain, 4)
        assert result.elapsed_seconds >= 0.0

    def test_repr(self):
        assert repr(DPccp()) == "DPccp()"
