"""Unit tests for IDP-1 (iterative dynamic programming)."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core.dpccp import DPccp
from repro.core.idp import IterativeDP
from repro.cost.disk import DiskCostModel
from repro.errors import OptimizerError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    random_connected_graph,
    star_graph,
)
from repro.plans.visitors import iter_leaves, validate_plan


class TestExactDegeneration:
    """k >= n must reproduce the exact optimum."""

    @pytest.mark.parametrize("seed", range(8))
    def test_equals_dpccp_when_k_covers_query(self, seed):
        rng = random.Random(7000 + seed)
        n = rng.randint(2, 8)
        graph = random_connected_graph(n, rng, rng.random() * 0.6)
        catalog = random_catalog(n, rng)
        exact = DPccp().optimize(graph, catalog=catalog)
        idp = IterativeDP(k=n).optimize(graph, catalog=catalog)
        assert idp.cost == pytest.approx(exact.cost)

    def test_k_larger_than_n(self):
        graph = chain_graph(5, selectivity=0.1)
        exact = DPccp().optimize(graph)
        idp = IterativeDP(k=20).optimize(graph)
        assert idp.cost == pytest.approx(exact.cost)


class TestHeuristicQuality:
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("seed", range(4))
    def test_never_beats_the_optimum(self, k, seed):
        rng = random.Random(7100 + seed)
        n = rng.randint(4, 8)
        graph = random_connected_graph(n, rng, rng.random() * 0.6)
        catalog = random_catalog(n, rng)
        exact = DPccp().optimize(graph, catalog=catalog)
        idp = IterativeDP(k=k).optimize(graph, catalog=catalog)
        assert idp.cost >= exact.cost - 1e-9 * max(1.0, exact.cost)

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_plans_are_valid(self, k, rng):
        for _ in range(6):
            n = rng.randint(4, 10)
            graph = random_connected_graph(n, rng, rng.random() * 0.5)
            catalog = random_catalog(n, rng)
            result = IterativeDP(k=k).optimize(graph, catalog=catalog)
            validate_plan(result.plan, graph)
            leaves = sorted(leaf.relation_index for leaf in iter_leaves(result.plan))
            assert leaves == list(range(n))

    def test_asymmetric_cost_model(self, rng):
        graph = random_connected_graph(7, rng, 0.4)
        catalog = random_catalog(7, rng)
        result = IterativeDP(k=3).optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        validate_plan(result.plan, graph)


class TestScalability:
    def test_large_clique_completes(self):
        """Exact DP on a 16-clique needs ~21M pairs; IDP(k=4) is quick."""
        graph = clique_graph(16, selectivity=0.05)
        result = IterativeDP(k=4).optimize(graph)
        validate_plan(result.plan, graph)
        # Bounded slices stay far below the exact pair count.
        assert result.counters.inner_counter < 100_000

    def test_long_chain_is_near_instant(self):
        graph = chain_graph(40, selectivity=0.1)
        result = IterativeDP(k=5).optimize(graph)
        validate_plan(result.plan, graph)

    def test_star_with_many_satellites(self):
        graph = star_graph(18, selectivity=0.01)
        result = IterativeDP(k=6).optimize(graph)
        validate_plan(result.plan, graph)


class TestConfiguration:
    def test_bad_k_rejected(self):
        with pytest.raises(OptimizerError):
            IterativeDP(k=1)

    def test_k_property(self):
        assert IterativeDP(k=9).k == 9

    def test_registry_name(self):
        from repro.core import make_algorithm

        assert make_algorithm("idp").name == "IDP-1"

    def test_deterministic(self, rng):
        graph = random_connected_graph(9, rng, 0.4)
        catalog = random_catalog(9, rng)
        one = IterativeDP(k=3).optimize(graph, catalog=catalog)
        two = IterativeDP(k=3).optimize(graph, catalog=catalog)
        assert one.cost == two.cost
