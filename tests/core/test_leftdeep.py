"""Unit tests for LeftDeepDP (exact optimal left-deep trees)."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, IKKBZ, LeftDeepDP
from repro.cost.cout import CoutModel
from repro.cost.disk import DiskCostModel
from repro.errors import OptimizerError
from repro.graph.generators import (
    chain_graph,
    cycle_graph,
    random_connected_graph,
    random_tree_graph,
)
from repro.graph.querygraph import QueryGraph
from repro.plans.metrics import PlanShape, classify_plan_shape
from repro.plans.visitors import validate_plan


class TestOptimality:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_ikkbz_on_trees_with_cout(self, seed):
        """Two independent optimal-left-deep algorithms must agree."""
        rng = random.Random(seed)
        n = rng.randint(2, 9)
        graph = random_tree_graph(n, rng)
        catalog = random_catalog(n, rng)
        dp = LeftDeepDP().optimize(graph, cost_model=CoutModel(graph, catalog))
        ikkbz = IKKBZ().optimize(graph, cost_model=CoutModel(graph, catalog))
        assert dp.cost == pytest.approx(ikkbz.cost)

    @pytest.mark.parametrize("seed", range(8))
    def test_never_beats_bushy(self, seed):
        rng = random.Random(100 + seed)
        n = rng.randint(2, 8)
        graph = random_connected_graph(n, rng, rng.random() * 0.7)
        catalog = random_catalog(n, rng)
        left_deep = LeftDeepDP().optimize(graph, catalog=catalog)
        bushy = DPccp().optimize(graph, catalog=catalog)
        assert left_deep.cost >= bushy.cost - 1e-9 * max(1.0, bushy.cost)

    def test_bushy_strictly_better_somewhere(self):
        """The chain instance where a bushy plan wins (middle blow-up)."""
        from repro.catalog.catalog import Catalog

        graph = QueryGraph(4, [(0, 1, 1e-6), (1, 2, 0.9), (2, 3, 1e-6)])
        catalog = Catalog.from_cardinalities([1e6] * 4)
        left_deep = LeftDeepDP().optimize(
            graph, cost_model=CoutModel(graph, catalog)
        )
        bushy = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog))
        assert bushy.cost < left_deep.cost


class TestPlans:
    def test_plans_are_left_deep(self, rng):
        for _ in range(8):
            n = rng.randint(2, 8)
            graph = random_connected_graph(n, rng, rng.random() * 0.6)
            result = LeftDeepDP().optimize(graph, catalog=random_catalog(n, rng))
            validate_plan(result.plan, graph)
            assert classify_plan_shape(result.plan) == PlanShape.LEFT_DEEP

    def test_works_on_cyclic_graphs(self):
        """Where IKKBZ refuses, LeftDeepDP still optimizes exactly."""
        graph = cycle_graph(6, selectivity=0.1)
        with pytest.raises(OptimizerError):
            IKKBZ().optimize(graph)
        result = LeftDeepDP().optimize(graph)
        validate_plan(result.plan, graph)

    def test_asymmetric_cost_model(self, rng):
        graph = random_connected_graph(6, rng, 0.4)
        catalog = random_catalog(6, rng)
        result = LeftDeepDP().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        validate_plan(result.plan, graph)
        assert classify_plan_shape(result.plan) == PlanShape.LEFT_DEEP


class TestLimits:
    def test_size_guard(self):
        from repro.core.dpsub import MAX_RELATIONS

        with pytest.raises(OptimizerError):
            LeftDeepDP().optimize(chain_graph(MAX_RELATIONS + 1))

    def test_connectivity_failures_counted(self):
        result = LeftDeepDP().optimize(chain_graph(6))
        from repro.analysis.formulas import csg_count

        assert result.counters.connectivity_check_failures == (
            2**6 - csg_count(6, "chain") - 1
        )
