"""Unit tests for DPsub (paper Figure 2)."""

from __future__ import annotations

import pytest

from repro.analysis.formulas import ccp_symmetric, csg_count, inner_counter_dpsub
from repro.core.dpsub import MAX_RELATIONS, DPsub
from repro.errors import OptimizerError
from repro.graph.generators import chain_graph, graph_for_topology
from repro.graph.querygraph import QueryGraph
from repro.plans.visitors import validate_plan
from tests.conftest import graph_of


class TestCounters:
    """Terminal counter values equal the paper's I_DPsub formulas."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
    def test_inner_counter(self, paper_topology, n):
        if paper_topology == "cycle" and n == 2:
            pytest.skip("2-cycle degenerates to chain")
        graph = graph_of(paper_topology, n)
        result = DPsub().optimize(graph)
        assert result.counters.inner_counter == inner_counter_dpsub(
            n, paper_topology
        )

    @pytest.mark.parametrize("n", [2, 4, 5, 7, 8])
    def test_csg_cmp_pair_counter_is_algorithm_independent(
        self, paper_topology, n
    ):
        if paper_topology == "cycle" and n == 2:
            pytest.skip("2-cycle degenerates to chain")
        graph = graph_of(paper_topology, n)
        result = DPsub().optimize(graph)
        assert result.counters.csg_cmp_pair_counter == ccp_symmetric(
            n, paper_topology
        )

    def test_ono_lohman_is_half(self):
        result = DPsub().optimize(chain_graph(6))
        counters = result.counters
        assert counters.ono_lohman_counter == counters.csg_cmp_pair_counter // 2

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_table_size_is_csg_count(self, paper_topology, n):
        graph = graph_of(paper_topology, n)
        result = DPsub().optimize(graph)
        assert result.table_size == csg_count(n, paper_topology)

    def test_create_join_tree_once_per_orientation(self):
        """DPsub meets each pair in both orientations, one join each."""
        result = DPsub().optimize(chain_graph(5))
        assert result.counters.create_join_tree_calls == (
            result.counters.csg_cmp_pair_counter
        )


class TestPlans:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_plan_is_valid(self, topology):
        graph = graph_for_topology(topology, 6, selectivity=0.1)
        result = DPsub().optimize(graph)
        validate_plan(result.plan, graph)

    def test_non_bfs_numbered_graph(self):
        """DPsub needs no numbering precondition at all."""
        graph = QueryGraph(4, [(2, 0, 0.1), (2, 1, 0.1), (2, 3, 0.1)])
        result = DPsub().optimize(graph)
        validate_plan(result.plan, graph)


class TestLimits:
    def test_size_guard(self):
        graph = chain_graph(MAX_RELATIONS + 1)
        with pytest.raises(OptimizerError):
            DPsub().optimize(graph)
