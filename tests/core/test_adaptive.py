"""Unit tests for the adaptive dispatcher."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveOptimizer
from repro.core.dpccp import DPccp
from repro.core.dpconv import DPconv
from repro.core.dpsub import DPsub
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    star_graph,
)
from repro.plans.visitors import validate_plan


class TestChoice:
    def test_clique_goes_to_dpconv(self):
        assert isinstance(AdaptiveOptimizer().choose(clique_graph(8)), DPconv)

    def test_tiny_clique_goes_to_dpsub(self):
        assert isinstance(AdaptiveOptimizer().choose(clique_graph(3)), DPsub)

    def test_conv_threshold_override_restores_dpsub(self):
        adaptive = AdaptiveOptimizer(conv_min_relations=9)
        assert isinstance(adaptive.choose(clique_graph(8)), DPsub)
        assert isinstance(adaptive.choose(clique_graph(9)), DPconv)

    def test_conv_disabled_above_size_limit(self):
        adaptive = AdaptiveOptimizer(dense_size_limit=16, conv_min_relations=17)
        assert isinstance(adaptive.choose(clique_graph(16)), DPsub)

    @pytest.mark.parametrize(
        "graph",
        [chain_graph(8), cycle_graph(8), star_graph(8)],
        ids=["chain", "cycle", "star"],
    )
    def test_sparse_goes_to_dpccp(self, graph):
        assert isinstance(AdaptiveOptimizer().choose(graph), DPccp)

    def test_large_clique_goes_to_dpccp(self):
        adaptive = AdaptiveOptimizer(dense_size_limit=10)
        assert isinstance(adaptive.choose(clique_graph(12)), DPccp)

    def test_threshold_override_forces_dpccp(self):
        adaptive = AdaptiveOptimizer(dense_threshold=1.1)
        assert isinstance(adaptive.choose(clique_graph(6)), DPccp)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(dense_threshold=0.0)

    def test_bad_conv_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(conv_min_relations=1)


class TestOptimize:
    def test_result_names_delegate(self):
        result = AdaptiveOptimizer().optimize(clique_graph(5, selectivity=0.1))
        assert result.algorithm == "adaptive->DPconv"
        result = AdaptiveOptimizer().optimize(clique_graph(3, selectivity=0.1))
        assert result.algorithm == "adaptive->DPsub"
        result = AdaptiveOptimizer().optimize(chain_graph(5, selectivity=0.1))
        assert result.algorithm == "adaptive->DPccp"

    def test_same_cost_as_direct_algorithms(self):
        graph = star_graph(6, selectivity=0.05)
        adaptive = AdaptiveOptimizer().optimize(graph)
        direct = DPccp().optimize(graph)
        assert adaptive.cost == pytest.approx(direct.cost)
        validate_plan(adaptive.plan, graph)

    def test_dpconv_delegate_matches_dpsub(self):
        graph = clique_graph(7, selectivity=0.1)
        adaptive = AdaptiveOptimizer().optimize(graph)
        assert adaptive.algorithm == "adaptive->DPconv"
        direct = DPsub().optimize(graph)
        assert adaptive.cost == pytest.approx(direct.cost, rel=1e-12)
        validate_plan(adaptive.plan, graph)
