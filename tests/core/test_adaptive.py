"""Unit tests for the adaptive dispatcher."""

from __future__ import annotations

import pytest

from repro.core.adaptive import (
    LADDER_RUNGS,
    AdaptiveOptimizer,
    RoutingDecision,
)
from repro.core.dpccp import DPccp
from repro.core.dpconv import DPconv
from repro.core.dpsub import DPsub
from repro.core.greedy import GreedyOperatorOrdering
from repro.core.idp import IterativeDP
from repro.core.lindp import LinDP
from repro.errors import DisconnectedGraphError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    star_graph,
)
from repro.graph.querygraph import QueryGraph
from repro.plans.visitors import validate_plan


class TestChoice:
    def test_clique_goes_to_dpconv(self):
        assert isinstance(AdaptiveOptimizer().choose(clique_graph(8)), DPconv)

    def test_tiny_clique_goes_to_dpsub(self):
        assert isinstance(AdaptiveOptimizer().choose(clique_graph(3)), DPsub)

    def test_conv_threshold_override_restores_dpsub(self):
        adaptive = AdaptiveOptimizer(conv_min_relations=9)
        assert isinstance(adaptive.choose(clique_graph(8)), DPsub)
        assert isinstance(adaptive.choose(clique_graph(9)), DPconv)

    def test_conv_disabled_above_size_limit(self):
        adaptive = AdaptiveOptimizer(dense_size_limit=16, conv_min_relations=17)
        assert isinstance(adaptive.choose(clique_graph(16)), DPsub)

    @pytest.mark.parametrize(
        "graph",
        [chain_graph(8), cycle_graph(8), star_graph(8)],
        ids=["chain", "cycle", "star"],
    )
    def test_sparse_goes_to_dpccp(self, graph):
        assert isinstance(AdaptiveOptimizer().choose(graph), DPccp)

    def test_large_clique_escalates_to_lindp(self):
        # The pre-ladder dispatcher sent over-limit cliques back to
        # DPccp — the exact stall the escalation ladder fixes.
        adaptive = AdaptiveOptimizer(dense_size_limit=10)
        assert isinstance(adaptive.choose(clique_graph(12)), LinDP)

    def test_threshold_override_forces_dpccp(self):
        adaptive = AdaptiveOptimizer(dense_threshold=1.1)
        assert isinstance(adaptive.choose(clique_graph(6)), DPccp)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(dense_threshold=0.0)

    def test_bad_conv_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(conv_min_relations=1)


class TestLadderRouting:
    """The class-by-size escalation ladder: every shape gets a rung."""

    def test_route_returns_decision(self):
        decision = AdaptiveOptimizer().route(chain_graph(8))
        assert isinstance(decision, RoutingDecision)
        assert decision.graph_class == "chain"
        assert decision.n_relations == 8
        assert decision.rung == "exact"
        assert decision.algorithm == "dpccp"
        assert decision.reason

    def test_rungs_are_well_known(self):
        adaptive = AdaptiveOptimizer()
        for n in (4, 20, 30, 200, 500):
            assert adaptive.route(chain_graph(n)).rung in LADDER_RUNGS

    def test_medium_sparse_escalates_to_lindp(self):
        # Pre-ladder, a 30-relation chain was routed straight at DPccp
        # and stalled in its exponential table — the ISSUE's bug.
        adaptive = AdaptiveOptimizer()
        for graph in (chain_graph(30), star_graph(30), cycle_graph(30)):
            decision = adaptive.route(graph)
            assert decision.rung == "lindp"
            assert isinstance(adaptive.choose(graph), LinDP)

    def test_chain_ladder_by_size(self):
        adaptive = AdaptiveOptimizer()
        assert adaptive.route(chain_graph(22)).rung == "exact"
        assert adaptive.route(chain_graph(23)).rung == "lindp"
        assert adaptive.route(chain_graph(160)).rung == "lindp"
        assert adaptive.route(chain_graph(161)).rung == "idp"
        assert adaptive.route(chain_graph(400)).rung == "idp"
        assert adaptive.route(chain_graph(401)).rung == "goo"
        assert isinstance(adaptive.choose(chain_graph(200)), IterativeDP)
        assert isinstance(
            adaptive.choose(chain_graph(500)), GreedyOperatorOrdering
        )

    def test_star_skips_the_idp_rung(self):
        # IDP's size-k blocks enumerate every connected subgraph of
        # size <= k — exponential at a star hub, so stars step from
        # lindp straight to goo.
        adaptive = AdaptiveOptimizer()
        assert adaptive.route(star_graph(160)).rung == "lindp"
        assert adaptive.route(star_graph(161)).rung == "goo"

    def test_star_exact_ceiling_below_chain(self):
        adaptive = AdaptiveOptimizer()
        assert adaptive.route(star_graph(14)).rung == "exact"
        assert adaptive.route(star_graph(15)).rung == "lindp"

    def test_dense_over_limit_escalates(self):
        decision = AdaptiveOptimizer(dense_size_limit=10).route(
            clique_graph(12)
        )
        assert decision.rung == "lindp"

    def test_disconnected_raises(self):
        with pytest.raises(DisconnectedGraphError):
            AdaptiveOptimizer().route(QueryGraph(3, [(0, 1)]))

    def test_exact_limits_override(self):
        adaptive = AdaptiveOptimizer(exact_size_limits={"chain": 5})
        assert adaptive.route(chain_graph(5)).rung == "exact"
        assert adaptive.route(chain_graph(6)).rung == "lindp"
        # Unnamed classes keep their defaults.
        assert adaptive.route(star_graph(14)).rung == "exact"

    def test_unknown_exact_limit_class_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(exact_size_limits={"pentagram": 5})

    def test_bad_exact_limit_value_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(exact_size_limits={"chain": 0})

    def test_idp_below_lindp_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(lindp_size_limit=200, idp_size_limit=100)

    def test_large_query_end_to_end(self):
        graph = chain_graph(30, selectivity=0.05)
        result = AdaptiveOptimizer().optimize(graph)
        assert result.algorithm == "adaptive->LinDP"
        validate_plan(result.plan, graph)


class TestDegradationPath:
    def test_exact_routed_steps_through_lindp(self):
        assert AdaptiveOptimizer().degradation_path(chain_graph(8)) == (
            "lindp",
            "goo",
        )

    def test_lindp_routed_skips_straight_to_goo(self):
        # A query already routed at (or past) lindp proved that rung
        # too slow; re-running it under a burnt deadline would stall.
        adaptive = AdaptiveOptimizer()
        assert adaptive.degradation_path(chain_graph(30)) == ("goo",)
        assert adaptive.degradation_path(chain_graph(200)) == ("goo",)
        assert adaptive.degradation_path(star_graph(300)) == ("goo",)

    def test_always_ends_in_goo(self):
        adaptive = AdaptiveOptimizer()
        for graph in (chain_graph(5), star_graph(40), clique_graph(8)):
            assert adaptive.degradation_path(graph)[-1] == "goo"


class TestOptimize:
    def test_result_names_delegate(self):
        result = AdaptiveOptimizer().optimize(clique_graph(5, selectivity=0.1))
        assert result.algorithm == "adaptive->DPconv"
        result = AdaptiveOptimizer().optimize(clique_graph(3, selectivity=0.1))
        assert result.algorithm == "adaptive->DPsub"
        result = AdaptiveOptimizer().optimize(chain_graph(5, selectivity=0.1))
        assert result.algorithm == "adaptive->DPccp"

    def test_same_cost_as_direct_algorithms(self):
        graph = star_graph(6, selectivity=0.05)
        adaptive = AdaptiveOptimizer().optimize(graph)
        direct = DPccp().optimize(graph)
        assert adaptive.cost == pytest.approx(direct.cost)
        validate_plan(adaptive.plan, graph)

    def test_dpconv_delegate_matches_dpsub(self):
        graph = clique_graph(7, selectivity=0.1)
        adaptive = AdaptiveOptimizer().optimize(graph)
        assert adaptive.algorithm == "adaptive->DPconv"
        direct = DPsub().optimize(graph)
        assert adaptive.cost == pytest.approx(direct.cost, rel=1e-12)
        validate_plan(adaptive.plan, graph)
