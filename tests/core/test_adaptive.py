"""Unit tests for the adaptive dispatcher."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveOptimizer
from repro.core.dpccp import DPccp
from repro.core.dpsub import DPsub
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    star_graph,
)
from repro.plans.visitors import validate_plan


class TestChoice:
    def test_clique_goes_to_dpsub(self):
        assert isinstance(AdaptiveOptimizer().choose(clique_graph(8)), DPsub)

    @pytest.mark.parametrize(
        "graph",
        [chain_graph(8), cycle_graph(8), star_graph(8)],
        ids=["chain", "cycle", "star"],
    )
    def test_sparse_goes_to_dpccp(self, graph):
        assert isinstance(AdaptiveOptimizer().choose(graph), DPccp)

    def test_large_clique_goes_to_dpccp(self):
        adaptive = AdaptiveOptimizer(dense_size_limit=10)
        assert isinstance(adaptive.choose(clique_graph(12)), DPccp)

    def test_threshold_override_forces_dpccp(self):
        adaptive = AdaptiveOptimizer(dense_threshold=1.1)
        assert isinstance(adaptive.choose(clique_graph(6)), DPccp)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveOptimizer(dense_threshold=0.0)


class TestOptimize:
    def test_result_names_delegate(self):
        result = AdaptiveOptimizer().optimize(clique_graph(5, selectivity=0.1))
        assert result.algorithm == "adaptive->DPsub"
        result = AdaptiveOptimizer().optimize(chain_graph(5, selectivity=0.1))
        assert result.algorithm == "adaptive->DPccp"

    def test_same_cost_as_direct_algorithms(self):
        graph = star_graph(6, selectivity=0.05)
        adaptive = AdaptiveOptimizer().optimize(graph)
        direct = DPccp().optimize(graph)
        assert adaptive.cost == pytest.approx(direct.cost)
        validate_plan(adaptive.plan, graph)
