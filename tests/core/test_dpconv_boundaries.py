"""Word-boundary regressions for DPconv's lattice addressing.

Python ints are arbitrary-precision, but 63/64/65 is exactly where a
fixed-width bitset implementation would silently wrap — the PR 3
pattern, applied to the pieces DPconv's table layout is built from:
Gosper layer enumeration (:func:`repro.bitset.iter_layer`) and the
colex combinatorial-number-system addressing
(:func:`repro.bitset.subset_rank` / :func:`repro.bitset.subset_unrank`)
whose stream-position == rank invariant is what makes "index into a
layer's dense table" well-defined. The enumerator itself must refuse
word-scale queries *before* allocating 2^n tables, with a clear error.
"""

from __future__ import annotations

from itertools import islice
from math import comb

import pytest

from repro import bitset
from repro.core.dpconv import DPconv, MAX_RELATIONS
from repro.errors import OptimizerError
from repro.graph.generators import chain_graph

WORD_EDGES = (63, 64, 65)


class TestIterLayerAtWordEdges:
    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_first_masks_cross_no_boundary(self, n):
        """The k=2 layer opens exactly as the combinatorial order says."""
        first = list(islice(bitset.iter_layer(n, 2), 5))
        assert first == [0b11, 0b101, 0b110, 0b1001, 0b1010]

    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_layer_end_reaches_top_bits(self, n):
        """The last k-subset is the top k bits — above bit 63 for n=65."""
        k = 3
        *_, last = bitset.iter_layer(n, k)
        assert last == ((1 << k) - 1) << (n - k)
        assert last.bit_length() == n

    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_near_full_layer_count(self, n):
        """k = n - 1 yields exactly n masks, each missing one bit."""
        masks = list(bitset.iter_layer(n, n - 1))
        assert len(masks) == n
        full = (1 << n) - 1
        assert {full ^ mask for mask in masks} == {1 << i for i in range(n)}

    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_popcount_invariant_across_the_boundary(self, n):
        """Every mask in the layer straddling bit 64 has exactly k bits."""
        k = 2
        for mask in bitset.iter_layer(n, k):
            assert mask.bit_count() == k
        assert sum(1 for _ in bitset.iter_layer(n, k)) == comb(n, k)


class TestSubsetRankAtWordEdges:
    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_stream_position_equals_rank(self, n):
        """The invariant layered tables rely on, at the word edge."""
        for position, mask in enumerate(bitset.iter_layer(n, 2)):
            assert bitset.subset_rank(mask) == position

    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_unrank_roundtrip_across_the_boundary(self, n):
        k = 2
        for rank in range(comb(n, k)):
            mask = bitset.subset_unrank(k, rank)
            assert mask.bit_count() == k
            assert mask < (1 << n)
            assert bitset.subset_rank(mask) == rank

    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_extreme_masks(self, n):
        """First and last mask of several layers, as pure int math."""
        for k in (1, 2, n - 1, n):
            low = (1 << k) - 1
            high = low << (n - k)
            assert bitset.subset_rank(low) == 0
            assert bitset.subset_rank(high) == comb(n, k) - 1
            assert bitset.subset_unrank(k, 0) == low
            assert bitset.subset_unrank(k, comb(n, k) - 1) == high

    def test_rank_of_single_top_bits(self):
        """Singleton {i} has rank i — bits 62..65 included."""
        for index in (62, 63, 64, 65):
            assert bitset.subset_rank(1 << index) == index
            assert bitset.subset_unrank(1, index) == 1 << index


class TestEnumeratorGuard:
    @pytest.mark.parametrize("n", WORD_EDGES)
    def test_word_scale_queries_refused_cleanly(self, n):
        """No 2^63-entry allocation: a clear OptimizerError instead."""
        with pytest.raises(OptimizerError, match="lattice"):
            DPconv().optimize(chain_graph(n))

    def test_guard_boundary_is_max_relations(self):
        with pytest.raises(OptimizerError):
            DPconv().optimize(chain_graph(MAX_RELATIONS + 1))
