"""Cross-validation: all optimal algorithms agree on every instance.

The strongest correctness evidence in the suite: DPsize, DPsub and DPccp
must return plans with exactly the cost of the exhaustive reference, on
randomized topologies, catalogs, and both cost models. Any enumeration
bug (missed pair, wrong DP order) surfaces here as a cost mismatch.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, DPsize, DPsub, ExhaustiveOptimizer
from repro.cost.cout import CoutModel
from repro.cost.disk import DiskCostModel
from repro.graph.generators import (
    graph_for_topology,
    grid_graph,
    random_connected_graph,
)
from repro.plans.visitors import validate_plan

OPTIMAL_ALGORITHMS = [DPsize, DPsub, DPccp, ExhaustiveOptimizer]


def all_costs(graph, cost_model_factory):
    costs = {}
    for algorithm_class in OPTIMAL_ALGORITHMS:
        result = algorithm_class().optimize(graph, cost_model=cost_model_factory())
        validate_plan(result.plan, graph)
        costs[algorithm_class.name] = result.cost
    return costs


class TestAgreementCout:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_paper_topologies(self, topology, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 7)
        graph = graph_for_topology(topology, n, rng=rng)
        catalog = random_catalog(n, rng)
        costs = all_costs(graph, lambda: CoutModel(graph, catalog))
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference), name

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = random.Random(1000 + seed)
        n = rng.randint(2, 8)
        graph = random_connected_graph(n, rng, rng.random() * 0.7)
        catalog = random_catalog(n, rng)
        costs = all_costs(graph, lambda: CoutModel(graph, catalog))
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference), name

    def test_grid(self):
        rng = random.Random(77)
        graph = grid_graph(2, 4, rng=rng)
        catalog = random_catalog(8, rng)
        costs = all_costs(graph, lambda: CoutModel(graph, catalog))
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference), name


class TestAgreementDisk:
    """The asymmetric disk model exercises the both-join-orders paths."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        rng = random.Random(2000 + seed)
        n = rng.randint(2, 7)
        graph = random_connected_graph(n, rng, rng.random() * 0.6)
        catalog = random_catalog(n, rng)
        costs = all_costs(graph, lambda: DiskCostModel(graph, catalog))
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference), name


class TestCounterInvariants:
    """Paper §2.3.1: CsgCmpPairCounter identical across all algorithms."""

    @pytest.mark.parametrize("seed", range(6))
    def test_csg_cmp_pair_counter_identical(self, seed):
        rng = random.Random(3000 + seed)
        n = rng.randint(2, 7)
        graph = random_connected_graph(n, rng, rng.random() * 0.8)
        counts = {
            cls.name: cls().optimize(graph).counters.csg_cmp_pair_counter
            for cls in (DPsize, DPsub, DPccp)
        }
        assert len(set(counts.values())) == 1, counts

    @pytest.mark.parametrize("seed", range(6))
    def test_inner_counter_lower_bound(self, seed):
        """InnerCounter >= #ccp for DPsize/DPsub; == for DPccp."""
        rng = random.Random(4000 + seed)
        n = rng.randint(2, 7)
        graph = random_connected_graph(n, rng, rng.random() * 0.8)
        dpccp = DPccp().optimize(graph).counters
        for cls in (DPsize, DPsub):
            counters = cls().optimize(graph).counters
            assert counters.inner_counter >= dpccp.inner_counter
