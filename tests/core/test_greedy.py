"""Unit tests for the GOO greedy baseline."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core.dpccp import DPccp
from repro.core.greedy import GreedyOperatorOrdering
from repro.graph.generators import (
    chain_graph,
    random_connected_graph,
    star_graph,
)
from repro.plans.visitors import validate_plan


class TestGreedy:
    def test_plan_is_valid(self):
        graph = star_graph(7, selectivity=0.05)
        result = GreedyOperatorOrdering().optimize(graph)
        validate_plan(result.plan, graph)

    def test_never_beats_optimal(self, rng):
        """Greedy cost >= DP-optimal cost, always."""
        for _ in range(15):
            n = rng.randint(2, 8)
            graph = random_connected_graph(n, rng, rng.random() * 0.6)
            catalog = random_catalog(n, rng)
            greedy = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
            optimal = DPccp().optimize(graph, catalog=catalog)
            assert greedy.cost >= optimal.cost - 1e-9 * max(1.0, optimal.cost)

    def test_suboptimal_instance_exists(self):
        """GOO is a heuristic: some instance must show a real gap.

        (If greedy were always optimal the baseline would be useless as
        a comparison point in the examples.)
        """
        rng = random.Random(1234)
        gaps = []
        for _ in range(40):
            n = rng.randint(4, 8)
            graph = random_connected_graph(n, rng, rng.random() * 0.6)
            catalog = random_catalog(n, rng)
            greedy = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
            optimal = DPccp().optimize(graph, catalog=catalog)
            gaps.append(greedy.cost / optimal.cost)
        assert max(gaps) > 1.001

    def test_single_relation(self):
        result = GreedyOperatorOrdering().optimize(chain_graph(1))
        assert result.plan.is_leaf

    def test_two_relations_optimal(self):
        graph = chain_graph(2, selectivity=0.1)
        greedy = GreedyOperatorOrdering().optimize(graph)
        optimal = DPccp().optimize(graph)
        assert greedy.cost == pytest.approx(optimal.cost)
