"""Unit tests for the pseudocode-literal ablation variants."""

from __future__ import annotations

import random

import pytest

from repro.analysis.formulas import (
    ccp_symmetric,
    csg_count,
    inner_counter_dpsub,
)
from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, DPsub
from repro.core.variants import DPsizeBasic, DPsubBasic
from repro.core.dpsize import DPsize
from repro.errors import OptimizerError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    random_connected_graph,
)
from repro.plans.visitors import validate_plan
from tests.conftest import graph_of


class TestOptimality:
    @pytest.mark.parametrize("seed", range(6))
    def test_variants_reach_the_optimum(self, seed):
        rng = random.Random(500 + seed)
        n = rng.randint(2, 7)
        graph = random_connected_graph(n, rng, rng.random() * 0.7)
        catalog = random_catalog(n, rng)
        reference = DPccp().optimize(graph, catalog=catalog)
        for variant in (DPsizeBasic(), DPsubBasic()):
            result = variant.optimize(graph, catalog=catalog)
            validate_plan(result.plan, graph)
            assert result.cost == pytest.approx(reference.cost), variant.name


class TestCounters:
    @pytest.mark.parametrize("n", [2, 4, 6, 8])
    def test_dpsub_basic_inner_counter_graph_independent(self, paper_topology, n):
        """Without the (*) filter: I = 3^n - 2^{n+1} + 1, any topology."""
        if paper_topology == "cycle" and n == 2:
            pytest.skip("2-cycle degenerates to chain")
        graph = graph_of(paper_topology, n)
        result = DPsubBasic().optimize(graph)
        assert result.counters.inner_counter == 3**n - 2 ** (n + 1) + 1

    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_dpsub_basic_equals_filtered_on_cliques(self, n):
        """On cliques every subset is connected: the filter is free."""
        graph = clique_graph(n)
        basic = DPsubBasic().optimize(graph)
        filtered = DPsub().optimize(graph)
        assert basic.counters.inner_counter == filtered.counters.inner_counter
        assert basic.counters.inner_counter == inner_counter_dpsub(n, "clique")

    @pytest.mark.parametrize("n", [4, 6, 8, 10])
    def test_dpsub_filter_saves_work_on_chains(self, n):
        graph = chain_graph(n)
        basic = DPsubBasic().optimize(graph)
        filtered = DPsub().optimize(graph)
        assert filtered.counters.inner_counter < basic.counters.inner_counter

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_dpsize_basic_roughly_doubles_inner_counter(self, paper_topology, n):
        graph = graph_of(paper_topology, n)
        basic = DPsizeBasic().optimize(graph)
        optimized = DPsize().optimize(graph)
        # Full-range enumeration sees every ordered pair; the optimized
        # variant sees each unordered pair once (plus it avoids the
        # equal-size diagonal), so the basic counter is at least 2x-ish.
        assert basic.counters.inner_counter >= 2 * optimized.counters.inner_counter
        assert basic.counters.inner_counter <= (
            2 * optimized.counters.inner_counter + csg_count(n, paper_topology)
        )

    @pytest.mark.parametrize("n", [4, 7])
    def test_shared_counters_still_algorithm_independent(self, paper_topology, n):
        graph = graph_of(paper_topology, n)
        expected = ccp_symmetric(n, paper_topology)
        assert DPsizeBasic().optimize(graph).counters.csg_cmp_pair_counter == expected
        assert DPsubBasic().optimize(graph).counters.csg_cmp_pair_counter == expected

    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_connectivity_failure_count_formula(self, paper_topology, n):
        """Paper §2.2: (*) failures = 2^n - #csg(n) - 1."""
        graph = graph_of(paper_topology, n)
        result = DPsub().optimize(graph)
        assert result.counters.connectivity_check_failures == (
            2**n - csg_count(n, paper_topology) - 1
        )

    def test_basic_variants_report_no_filter_failures(self):
        graph = chain_graph(6)
        assert (
            DPsubBasic().optimize(graph).counters.connectivity_check_failures == 0
        )
        assert (
            DPsizeBasic().optimize(graph).counters.connectivity_check_failures == 0
        )


class TestLimits:
    def test_dpsub_basic_size_guard(self):
        from repro.core.dpsub import MAX_RELATIONS

        with pytest.raises(OptimizerError):
            DPsubBasic().optimize(chain_graph(MAX_RELATIONS + 1))
