"""Unit tests for the algorithm registry and optimize() convenience."""

from __future__ import annotations

import pytest

from repro.core import ALGORITHMS, make_algorithm, optimize
from repro.errors import OptimizerError
from repro.graph.generators import chain_graph


class TestRegistry:
    def test_all_names_constructible(self):
        for name in ALGORITHMS:
            algorithm = make_algorithm(name)
            assert algorithm.name

    def test_case_insensitive(self):
        assert make_algorithm("DPCCP").name == "DPccp"

    def test_unknown_name(self):
        with pytest.raises(OptimizerError):
            make_algorithm("quantum")

    def test_optimize_convenience(self):
        result = optimize(chain_graph(4, selectivity=0.1), algorithm="dpsize")
        assert result.algorithm == "DPsize"
        assert result.plan.size == 4

    def test_optimize_default_is_dpccp(self):
        result = optimize(chain_graph(3, selectivity=0.1))
        assert result.algorithm == "DPccp"
