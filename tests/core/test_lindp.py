"""Unit and differential tests for LinDP, the ladder's middle rung."""

from __future__ import annotations

import random
import time

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core.dpccp import DPccp
from repro.core.greedy import GreedyOperatorOrdering
from repro.core.lindp import LinDP, leaf_order
from repro.cost.cout import CoutModel
from repro.cost.disk import DiskCostModel
from repro.errors import DisconnectedGraphError, OptimizerError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    graph_for_topology,
    random_connected_graph,
)
from repro.graph.querygraph import QueryGraph
from repro.plans.visitors import validate_plan

#: Relative tolerance for cost comparisons: the interval DP's float
#: sweep accumulates in a different association order than the model.
REL_TOL = 1e-9


def upper(cost: float) -> float:
    return cost * (1 + REL_TOL)


class TestValidation:
    def test_bad_all_roots_limit_rejected(self):
        with pytest.raises(OptimizerError):
            LinDP(all_roots_limit=0)

    def test_bad_max_dp_roots_rejected(self):
        with pytest.raises(OptimizerError):
            LinDP(max_dp_roots=0)

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            LinDP().optimize(QueryGraph(3, [(0, 1)]))


class TestLeafOrder:
    def test_leaf_order_is_a_permutation(self):
        graph = graph_for_topology("star", 7, rng=random.Random(3))
        plan = DPccp().optimize(graph, catalog=random_catalog(7, rng=3)).plan
        order = leaf_order(plan)
        assert sorted(order) == list(range(7))

    def test_leaf_order_respects_structure(self):
        # A left-deep chain's leaf order is its join order.
        graph = chain_graph(4, selectivity=0.1)
        plan = LinDP().optimize(graph).plan
        assert sorted(leaf_order(plan)) == [0, 1, 2, 3]


class TestEdgeCases:
    def test_single_relation(self):
        result = LinDP().optimize(chain_graph(1))
        assert result.plan.is_leaf

    def test_two_relations(self):
        result = LinDP().optimize(chain_graph(2, selectivity=0.5))
        assert result.plan.size == 2

    def test_counters_exposed(self):
        result = LinDP().optimize(
            chain_graph(8), catalog=random_catalog(8, rng=1)
        )
        assert result.counters.extra["lindp_orderings"] >= 1
        assert result.counters.extra["lindp_splits"] > 0
        assert result.counters.inner_counter > 0
        assert result.counters.create_join_tree_calls >= 7


class TestDifferential:
    @pytest.mark.parametrize("topology", ["chain", "star", "cycle", "clique"])
    @pytest.mark.parametrize("n", [4, 6, 8, 10, 12])
    def test_between_exact_and_goo(self, topology, n):
        """exact <= LinDP <= GOO on the paper's four topologies."""
        if topology == "clique" and n > 10:
            pytest.skip("exact clique reference too slow for tier-1")
        rng = random.Random(n * 31 + 1)
        graph = graph_for_topology(topology, n, rng=rng)
        catalog = random_catalog(n, rng)
        exact = DPccp().optimize(graph, catalog=catalog)
        lindp = LinDP().optimize(graph, catalog=catalog)
        goo = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
        validate_plan(lindp.plan, graph)
        assert lindp.cost >= exact.cost / (1 + REL_TOL)
        assert lindp.cost <= upper(goo.cost)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact_on_chains(self, seed):
        """Chains: the chain order is a linearization of the optimum."""
        rng = random.Random(seed)
        n = rng.randint(3, 12)
        graph = chain_graph(n, rng=rng)
        catalog = random_catalog(n, rng)
        exact = DPccp().optimize(graph, catalog=catalog)
        lindp = LinDP().optimize(graph, catalog=catalog)
        assert lindp.cost == pytest.approx(exact.cost, rel=REL_TOL)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_cyclic_graphs_never_worse_than_goo(self, seed):
        """The GOO-leaf-order linearization bounds LinDP above by GOO."""
        rng = random.Random(seed)
        n = rng.randint(3, 10)
        graph = random_connected_graph(n, rng, rng.random())
        catalog = random_catalog(n, rng)
        lindp = LinDP().optimize(graph, catalog=catalog)
        goo = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
        validate_plan(lindp.plan, graph)
        assert lindp.cost <= upper(goo.cost)

    def test_forced_proxy_ranking_path(self):
        """all_roots_limit below n exercises the ranked-roots branch."""
        rng = random.Random(5)
        graph = graph_for_topology("star", 12, rng=rng)
        catalog = random_catalog(12, rng)
        full = LinDP().optimize(graph, catalog=catalog)
        pruned = LinDP(all_roots_limit=4, max_dp_roots=2).optimize(
            graph, catalog=catalog
        )
        goo = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
        # Fewer orderings can cost more, never more than GOO.
        assert pruned.cost >= full.cost / (1 + REL_TOL)
        assert pruned.cost <= upper(goo.cost)
        assert pruned.counters.extra["lindp_orderings"] == 3  # GOO + 2


class TestPricedPath:
    """The generic interval DP for asymmetric / non-separable models."""

    @pytest.mark.parametrize("topology", ["chain", "star", "cycle"])
    def test_asymmetric_model_between_exact_and_goo(self, topology):
        rng = random.Random(17)
        graph = graph_for_topology(topology, 8, rng=rng)
        catalog = random_catalog(8, rng)
        model = DiskCostModel(graph, catalog)
        assert not model.symmetric  # guards the fixture, not LinDP
        exact = DPccp().optimize(graph, cost_model=model)
        lindp = LinDP().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        goo = GreedyOperatorOrdering().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        validate_plan(lindp.plan, graph)
        assert lindp.cost >= exact.cost / (1 + REL_TOL)
        assert lindp.cost <= upper(goo.cost)


class TestScale:
    @pytest.mark.parametrize("topology", ["chain", "star", "clique"])
    def test_100_relations_under_ten_seconds(self, topology):
        """The ISSUE's stall gate: n=100, any shape, well under 10s."""
        rng = random.Random(23)
        graph = graph_for_topology(topology, 100, rng=rng)
        catalog = random_catalog(100, rng)
        started = time.perf_counter()
        result = LinDP().optimize(graph, catalog=catalog)
        elapsed = time.perf_counter() - started
        validate_plan(result.plan, graph)
        assert result.plan.size == 100
        assert elapsed < 10.0, f"{topology}-100 took {elapsed:.1f}s"

    def test_clique_fallback_uses_bfs_orders(self):
        result = LinDP().optimize(
            clique_graph(12), catalog=random_catalog(12, rng=2)
        )
        # GOO order plus at least one BFS order (deduplicated starts).
        assert result.counters.extra["lindp_orderings"] >= 2
