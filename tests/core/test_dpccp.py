"""Unit tests for DPccp (paper Figure 4)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.formulas import ccp_unordered, csg_count
from repro.core.dpccp import DPccp
from repro.core.exhaustive import ExhaustiveOptimizer
from repro.graph.counting import count_ccp_brute_force
from repro.graph.generators import (
    chain_graph,
    graph_for_topology,
    grid_graph,
    random_connected_graph,
)
from repro.graph.querygraph import QueryGraph
from repro.plans.visitors import validate_plan
from tests.conftest import graph_of


class TestCounters:
    """DPccp's InnerCounter meets the Ono-Lohman lower bound exactly."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
    def test_inner_counter_equals_ccp(self, paper_topology, n):
        if paper_topology == "cycle" and n == 2:
            pytest.skip("2-cycle degenerates to chain")
        graph = graph_of(paper_topology, n)
        result = DPccp().optimize(graph)
        assert result.counters.inner_counter == ccp_unordered(n, paper_topology)
        assert result.counters.ono_lohman_counter == result.counters.inner_counter
        assert result.counters.csg_cmp_pair_counter == (
            2 * result.counters.inner_counter
        )

    def test_inner_counter_on_general_graph(self, rng):
        """On arbitrary graphs the bound is the brute-force pair count."""
        for _ in range(10):
            graph = random_connected_graph(rng.randint(2, 7), rng, 0.4)
            result = DPccp().optimize(graph)
            assert result.counters.csg_cmp_pair_counter == (
                count_ccp_brute_force(graph)
            )

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_table_size_is_csg_count(self, paper_topology, n):
        graph = graph_of(paper_topology, n)
        result = DPccp().optimize(graph)
        assert result.table_size == csg_count(n, paper_topology)

    def test_create_join_tree_once_per_pair_when_symmetric(self):
        result = DPccp().optimize(chain_graph(6))
        assert result.counters.create_join_tree_calls == (
            result.counters.inner_counter
        )

    def test_create_join_tree_twice_per_pair_when_asymmetric(self):
        from repro.cost.disk import DiskCostModel

        graph = chain_graph(6, selectivity=0.1)
        result = DPccp().optimize(graph, cost_model=DiskCostModel(graph))
        assert result.counters.create_join_tree_calls == (
            2 * result.counters.inner_counter
        )


class TestPlans:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_plan_is_valid(self, topology):
        graph = graph_for_topology(topology, 6, selectivity=0.1)
        result = DPccp().optimize(graph)
        validate_plan(result.plan, graph)

    def test_grid_plan_is_valid(self):
        graph = grid_graph(3, 3, selectivity=0.05)
        result = DPccp().optimize(graph)
        validate_plan(result.plan, graph)


class TestRenumbering:
    """DPccp must be correct on graphs that are not BFS-numbered."""

    def test_off_center_star(self):
        graph = QueryGraph(
            4, [(2, 0, 0.1), (2, 1, 0.2), (2, 3, 0.3)]
        )
        assert not graph.is_bfs_numbered()
        result = DPccp().optimize(graph)
        validate_plan(result.plan, graph)
        assert result.counters.inner_counter == ccp_unordered(4, "star")

    def test_permuted_graphs_same_cost(self, rng):
        """Cost of the optimum is invariant under relabelling."""
        for _ in range(8):
            n = rng.randint(3, 7)
            graph = random_connected_graph(n, rng, 0.4)
            permutation = list(range(n))
            rng.shuffle(permutation)
            relabelled = graph.relabelled(permutation)
            original = DPccp().optimize(graph)
            shuffled = DPccp().optimize(relabelled)
            assert original.cost == pytest.approx(shuffled.cost)
            assert (
                original.counters.inner_counter
                == shuffled.counters.inner_counter
            )

    def test_matches_exhaustive_on_non_bfs_graph(self):
        rng = random.Random(5)
        graph = random_connected_graph(7, rng, 0.35)
        permuted = graph.relabelled([6, 5, 4, 3, 2, 1, 0])
        dpccp = DPccp().optimize(permuted)
        reference = ExhaustiveOptimizer().optimize(permuted)
        assert dpccp.cost == pytest.approx(reference.cost)
