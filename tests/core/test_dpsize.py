"""Unit tests for DPsize (paper Figure 1)."""

from __future__ import annotations

import pytest

from repro.analysis.formulas import ccp_symmetric, csg_count, inner_counter_dpsize
from repro.core.dpsize import DPsize
from repro.graph.generators import graph_for_topology
from repro.plans.visitors import validate_plan
from tests.conftest import graph_of


class TestCounters:
    """Terminal counter values equal the paper's I_DPsize formulas."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 10, 11])
    def test_inner_counter(self, paper_topology, n):
        if paper_topology == "cycle" and n == 2:
            pytest.skip("2-cycle degenerates to chain")
        graph = graph_of(paper_topology, n)
        result = DPsize().optimize(graph)
        assert result.counters.inner_counter == inner_counter_dpsize(
            n, paper_topology
        )

    @pytest.mark.parametrize("n", [2, 4, 5, 7, 8])
    def test_csg_cmp_pair_counter_is_algorithm_independent(
        self, paper_topology, n
    ):
        if paper_topology == "cycle" and n == 2:
            pytest.skip("2-cycle degenerates to chain")
        graph = graph_of(paper_topology, n)
        result = DPsize().optimize(graph)
        assert result.counters.csg_cmp_pair_counter == ccp_symmetric(
            n, paper_topology
        )
        assert result.counters.ono_lohman_counter * 2 == (
            result.counters.csg_cmp_pair_counter
        )

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_table_size_is_csg_count(self, paper_topology, n):
        graph = graph_of(paper_topology, n)
        result = DPsize().optimize(graph)
        assert result.table_size == csg_count(n, paper_topology)


class TestPlans:
    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_plan_is_valid(self, topology):
        graph = graph_for_topology(topology, 6, selectivity=0.1)
        result = DPsize().optimize(graph)
        validate_plan(result.plan, graph)

    def test_two_relations(self):
        graph = graph_of("chain", 2, selectivity=0.5)
        result = DPsize().optimize(graph)
        assert result.plan.size == 2
        assert result.counters.inner_counter == 1

    def test_create_join_tree_once_per_pair_when_symmetric(self):
        """C_out is symmetric: one CreateJoinTree per unordered pair."""
        graph = graph_of("chain", 4)
        result = DPsize().optimize(graph)
        assert result.counters.create_join_tree_calls == (
            result.counters.ono_lohman_counter
        )

    def test_create_join_tree_both_orders_when_asymmetric(self):
        from repro.cost.disk import DiskCostModel

        graph = graph_of("chain", 4, selectivity=0.1)
        result = DPsize().optimize(graph, cost_model=DiskCostModel(graph))
        assert result.counters.create_join_tree_calls == (
            result.counters.csg_cmp_pair_counter
        )
