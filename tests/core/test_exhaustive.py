"""Unit tests for the exhaustive reference optimizer."""

from __future__ import annotations

import pytest

from repro.core.exhaustive import ExhaustiveOptimizer
from repro.graph.generators import chain_graph, clique_graph, star_graph
from repro.plans.visitors import validate_plan


class TestExhaustive:
    def test_trivial_sizes(self):
        assert ExhaustiveOptimizer().optimize(chain_graph(1)).plan.is_leaf
        result = ExhaustiveOptimizer().optimize(chain_graph(2, selectivity=0.5))
        assert result.plan.size == 2

    @pytest.mark.parametrize("topology_graph", [
        chain_graph(6, selectivity=0.1),
        star_graph(6, selectivity=0.1),
        clique_graph(5, selectivity=0.1),
    ], ids=["chain", "star", "clique"])
    def test_plans_valid(self, topology_graph):
        result = ExhaustiveOptimizer().optimize(topology_graph)
        validate_plan(result.plan, topology_graph)

    def test_ono_lohman_counter_matches_dp(self):
        """The reference also visits each unordered pair exactly once."""
        from repro.analysis.formulas import ccp_unordered

        graph = chain_graph(6)
        result = ExhaustiveOptimizer().optimize(graph)
        assert result.counters.ono_lohman_counter == ccp_unordered(6, "chain")

    def test_chain_optimal_cost_closed_form(self):
        """On a uniform chain, joining cheapest-first is optimal.

        Chain of 3 relations, card 1000 each, selectivity 0.001: every
        pairwise join yields 1000 rows; the final join yields 1000.
        C_out of the best plan = 1000 + 1000.
        """
        graph = chain_graph(3, selectivity=0.001)
        result = ExhaustiveOptimizer().optimize(graph)
        assert result.cost == pytest.approx(2000.0)
