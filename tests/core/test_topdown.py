"""Unit tests for the top-down branch-and-bound optimizer."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, ExhaustiveOptimizer, TopDownBB
from repro.cost.cout import CoutModel
from repro.cost.disk import DiskCostModel
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    graph_for_topology,
    random_connected_graph,
    star_graph,
)
from repro.plans.visitors import validate_plan


class TestOptimality:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_dpccp_cout(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 8)
        graph = random_connected_graph(n, rng, rng.random() * 0.7)
        catalog = random_catalog(n, rng)
        top_down = TopDownBB().optimize(graph, catalog=catalog)
        bottom_up = DPccp().optimize(graph, catalog=catalog)
        assert top_down.cost == pytest.approx(bottom_up.cost)
        validate_plan(top_down.plan, graph)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exhaustive_disk_model(self, seed):
        """With no usable lower bound, B&B must still be exact."""
        rng = random.Random(50 + seed)
        n = rng.randint(2, 7)
        graph = random_connected_graph(n, rng, rng.random() * 0.6)
        catalog = random_catalog(n, rng)
        top_down = TopDownBB().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        reference = ExhaustiveOptimizer().optimize(
            graph, cost_model=DiskCostModel(graph, catalog)
        )
        assert top_down.cost == pytest.approx(reference.cost)

    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    def test_paper_topologies(self, topology):
        graph = graph_for_topology(topology, 6, rng=random.Random(3))
        catalog = random_catalog(6, rng=3)
        top_down = TopDownBB().optimize(graph, catalog=catalog)
        bottom_up = DPccp().optimize(graph, catalog=catalog)
        assert top_down.cost == pytest.approx(bottom_up.cost)

    def test_without_greedy_seed(self):
        rng = random.Random(8)
        graph = random_connected_graph(6, rng, 0.4)
        catalog = random_catalog(6, rng)
        unseeded = TopDownBB(use_greedy_seed=False).optimize(
            graph, catalog=catalog
        )
        assert unseeded.cost == pytest.approx(
            DPccp().optimize(graph, catalog=catalog).cost
        )


class TestPruning:
    def test_bound_prunes_partitions(self):
        """On a skewed chain the bound must eliminate real work."""
        rng = random.Random(11)
        graph = chain_graph(10, rng=rng)
        catalog = random_catalog(10, rng)
        algorithm = TopDownBB()
        algorithm.optimize(graph, cost_model=CoutModel(graph, catalog))
        assert algorithm.pruned_partitions > 0

    def test_pruned_counter_resets_per_run(self):
        rng = random.Random(12)
        graph = star_graph(7, rng=rng)
        catalog = random_catalog(7, rng)
        algorithm = TopDownBB()
        algorithm.optimize(graph, catalog=catalog)
        first = algorithm.pruned_partitions
        algorithm.optimize(graph, catalog=catalog)
        assert algorithm.pruned_partitions == first

    def test_inspects_no_more_pairs_than_exhaustive(self):
        """B&B may skip *pricing*, never *inspect* more pairs."""
        graph = clique_graph(7, selectivity=0.1)
        top_down = TopDownBB().optimize(graph)
        reference = ExhaustiveOptimizer().optimize(graph)
        assert (
            top_down.counters.ono_lohman_counter
            <= reference.counters.ono_lohman_counter
        )


class TestRegistry:
    def test_name(self):
        from repro.core import make_algorithm

        assert make_algorithm("topdown").name == "TopDownBB"

    def test_single_relation(self):
        assert TopDownBB().optimize(chain_graph(1)).plan.is_leaf
