"""Unit tests for the IKKBZ left-deep baseline."""

from __future__ import annotations

import random

import pytest

from repro import bitset
from repro.catalog.synthetic import random_catalog
from repro.core.dpccp import DPccp
from repro.core.ikkbz import IKKBZ, _Module, ikkbz_order_for_root
from repro.cost.cout import CoutModel
from repro.errors import OptimizerError
from repro.graph.generators import (
    chain_graph,
    cycle_graph,
    random_tree_graph,
    star_graph,
)
from repro.graph.querygraph import QueryGraph
from repro.plans.metrics import PlanShape, classify_plan_shape
from repro.plans.visitors import validate_plan


def optimal_left_deep_cost(graph: QueryGraph, catalog) -> float:
    """Independent DP over left-deep cross-product-free plans.

    best(S) = min over r in S, S \\ {r} connected and joined to r, of
    join(best(S \\ {r}), r). O(2^n * n); the oracle for IKKBZ.
    """
    model = CoutModel(graph, catalog)
    best: dict[int, object] = {
        bitset.bit(i): model.leaf(i) for i in range(graph.n_relations)
    }
    for mask in range(1, graph.all_relations + 1):
        if mask in best or not graph.is_connected_set(mask):
            continue
        champion = None
        for index in bitset.iter_bits(mask):
            rest = mask ^ bitset.bit(index)
            if rest not in best:
                continue
            if not graph.are_connected(rest, bitset.bit(index)):
                continue
            candidate = model.join(best[rest], model.leaf(index))
            if champion is None or candidate.cost < champion.cost:
                champion = candidate
        if champion is not None:
            best[mask] = champion
    return best[graph.all_relations].cost


class TestIKKBZ:
    def test_rejects_cyclic_graphs(self):
        with pytest.raises(OptimizerError):
            IKKBZ().optimize(cycle_graph(4))

    def test_plans_are_left_deep_and_valid(self):
        graph = star_graph(6, selectivity=0.03)
        result = IKKBZ().optimize(graph, catalog=random_catalog(6, rng=1))
        validate_plan(result.plan, graph)
        assert classify_plan_shape(result.plan) == PlanShape.LEFT_DEEP

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_left_deep_dp_on_random_trees(self, seed):
        """IKKBZ == optimal left-deep under C_out (the ASI guarantee)."""
        rng = random.Random(seed)
        n = rng.randint(2, 9)
        graph = random_tree_graph(n, rng)
        catalog = random_catalog(n, rng)
        result = IKKBZ().optimize(graph, cost_model=CoutModel(graph, catalog))
        assert result.cost == pytest.approx(
            optimal_left_deep_cost(graph, catalog)
        )

    @pytest.mark.parametrize("builder", [chain_graph, star_graph])
    def test_never_beats_bushy_optimum(self, builder):
        rng = random.Random(9)
        graph = builder(7, rng=rng)
        catalog = random_catalog(7, rng)
        left_deep = IKKBZ().optimize(graph, catalog=catalog)
        bushy = DPccp().optimize(graph, catalog=catalog)
        assert left_deep.cost >= bushy.cost - 1e-9 * max(1.0, bushy.cost)

    def test_single_relation(self):
        assert IKKBZ().optimize(chain_graph(1)).plan.is_leaf

    def test_two_relations(self):
        graph = chain_graph(2, selectivity=0.5)
        result = IKKBZ().optimize(graph)
        assert result.plan.size == 2


class TestZeroCostRank:
    """Regression: C == 0 modules must order by the sign of T - 1.

    The old code returned -inf for every zero-cost module, letting a
    free *growing* module (T > 1) jump the queue and mis-linearize
    plans with free predicates.
    """

    def test_free_growing_module_ranks_last(self):
        assert _Module(indices=[0], t=2.0, c=0.0).rank == float("inf")

    def test_free_shrinking_module_ranks_first(self):
        assert _Module(indices=[0], t=0.5, c=0.0).rank == float("-inf")

    def test_free_neutral_module_is_indifferent(self):
        assert _Module(indices=[0], t=1.0, c=0.0).rank == 0.0

    def test_finite_rank_unchanged(self):
        assert _Module(indices=[0], t=3.0, c=4.0).rank == pytest.approx(0.5)

    @pytest.mark.parametrize("seed", range(6))
    def test_orderings_still_optimal_left_deep(self, seed):
        """The ASI guarantee holds for every root's ordering stream."""
        rng = random.Random(100 + seed)
        n = rng.randint(3, 8)
        graph = random_tree_graph(n, rng)
        catalog = random_catalog(n, rng)
        model = CoutModel(graph, catalog)
        oracle = optimal_left_deep_cost(graph, catalog)
        result = IKKBZ().optimize(graph, cost_model=CoutModel(graph, catalog))
        assert result.cost == pytest.approx(oracle)
        for root in range(n):
            order = ikkbz_order_for_root(graph, model.estimator, root)
            assert sorted(order) == list(range(n))
            assert order[0] == root
