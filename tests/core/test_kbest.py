"""K-best capture: rank-1 bit-identity, rank ordering, determinism.

The contract that makes :func:`repro.core.kbest.k_best_plans` safe to
enable inside the caching service: asking for k plans must not perturb
the plan the service would have computed anyway. Rank 1 is therefore
pinned *bit-identical* — same tree, same cost, same paper counters —
to a plain ``optimize`` call for every exact enumerator, and ranks are
pinned to the documented ``(cost, fingerprint)`` total order.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import make_algorithm
from repro.core.kbest import (
    MAX_K,
    POSTHOC_MAX_RELATIONS,
    KBestPlanTable,
    KBestTracker,
    k_best_plans,
    plan_fingerprint,
)
from repro.errors import OptimizerError
from repro.graph.generators import graph_for_topology
from repro.plans.jointree import JoinTree

#: Every exact enumerator in the registry (heuristics rank by their own
#: search space and are exercised through the service, not here).
#: leftdeep is exact within the left-deep space, which is the contract
#: its rank 1 must preserve.
EXACT_ALGORITHMS = (
    "dpsize",
    "dpsub",
    "dpccp",
    "dpconv",
    "dpsize-basic",
    "dpsub-basic",
    "dpall",
    "topdown",
    "exhaustive",
    "leftdeep",
    "adaptive",
)

#: n=10 on the sparse paper topologies per the acceptance bar; cliques
#: capped at n=8 to keep the slowest enumerators in test budget.
INSTANCES = (
    ("chain", 10),
    ("star", 10),
    ("cycle", 10),
    ("clique", 8),
)


def _instance(topology: str, n: int):
    rng = random.Random(1000 + n)
    graph = graph_for_topology(topology, n, rng=rng)
    catalog = random_catalog(n, rng)
    return graph, catalog


def _leaf(index: int, cardinality: float) -> JoinTree:
    return JoinTree.leaf(index, cardinality=cardinality)


def _join(left: JoinTree, right: JoinTree, cost: float) -> JoinTree:
    return JoinTree.join(
        left, right, cardinality=cost, cost=cost, operator="HJ"
    )


# ----------------------------------------------------------------------
# Rank-1 bit-identity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", EXACT_ALGORITHMS)
@pytest.mark.parametrize("topology,n", INSTANCES)
def test_rank1_bit_identical_to_plain_optimize(
    algorithm: str, topology: str, n: int
) -> None:
    graph, catalog = _instance(topology, n)
    reference = make_algorithm(algorithm).optimize(graph, catalog=catalog)
    kbest = k_best_plans(graph, k=4, algorithm=algorithm, catalog=catalog)

    assert kbest.plans[0] is kbest.result.plan
    # Bit-identical: same structure, same cost, same paper counters.
    assert plan_fingerprint(kbest.result.plan) == plan_fingerprint(
        reference.plan
    )
    assert kbest.result.cost == reference.cost
    assert kbest.result.plan.cost == reference.plan.cost
    assert (
        kbest.result.counters.as_dict() == reference.counters.as_dict()
    ), algorithm
    assert kbest.result.algorithm == reference.algorithm


@pytest.mark.parametrize("topology,n", INSTANCES)
def test_ranks_are_cost_ordered_with_fingerprint_tiebreak(
    topology: str, n: int
) -> None:
    graph, catalog = _instance(topology, n)
    kbest = k_best_plans(graph, k=6, algorithm="dpccp", catalog=catalog)
    assert 1 <= kbest.k_available <= 6
    # Ranks 2..k follow the documented strict (cost, fingerprint)
    # total order; rank 1 is the algorithm's own champion, so only
    # its cost bound is guaranteed, not its tie-break position.
    assert kbest.plans[0].cost <= kbest.plans[-1].cost
    ordered = [
        (plan.cost, plan_fingerprint(plan)) for plan in kbest.plans[1:]
    ]
    assert ordered == sorted(ordered)
    assert len(set(fingerprint for _, fingerprint in ordered)) == len(ordered)
    # No alternative undercuts the optimum, and none repeats rank 1.
    first = plan_fingerprint(kbest.plans[0])
    for plan in kbest.plans[1:]:
        assert plan.cost >= kbest.plans[0].cost
        assert plan_fingerprint(plan) != first


@pytest.mark.parametrize("algorithm", ("dpccp", "dpconv"))
def test_kbest_is_deterministic_across_runs(algorithm: str) -> None:
    graph, catalog = _instance("cycle", 8)
    runs = [
        k_best_plans(graph, k=5, algorithm=algorithm, catalog=catalog)
        for _ in range(2)
    ]
    fingerprints = [
        [plan_fingerprint(plan) for plan in run.plans] for run in runs
    ]
    assert fingerprints[0] == fingerprints[1]
    assert [p.cost for p in runs[0].plans] == [p.cost for p in runs[1].plans]


# ----------------------------------------------------------------------
# Capture modes
# ----------------------------------------------------------------------


def test_capture_mode_per_algorithm() -> None:
    graph, catalog = _instance("star", 7)
    assert (
        k_best_plans(graph, k=3, algorithm="dpccp", catalog=catalog).capture
        == "inline"
    )
    # DPconv's value-only sweep cannot stream root candidates; it gets
    # the post-hoc DPccp capture pass.
    assert (
        k_best_plans(graph, k=3, algorithm="dpconv", catalog=catalog).capture
        == "post-hoc"
    )
    assert (
        k_best_plans(graph, k=1, algorithm="dpccp", catalog=catalog).capture
        == "single"
    )


def test_posthoc_alternatives_match_inline() -> None:
    # Both capture modes rank the same candidate space (top joins of
    # DP-optimal subplans), so alternatives must agree plan-for-plan.
    graph, catalog = _instance("chain", 9)
    inline = k_best_plans(graph, k=5, algorithm="dpccp", catalog=catalog)
    posthoc = k_best_plans(graph, k=5, algorithm="dpconv", catalog=catalog)
    assert [plan_fingerprint(p) for p in inline.plans[1:]] == [
        plan_fingerprint(p) for p in posthoc.plans[1:]
    ]


def test_k_bounds_are_validated() -> None:
    graph, catalog = _instance("chain", 4)
    for bad in (0, -1, MAX_K + 1):
        with pytest.raises(OptimizerError):
            k_best_plans(graph, k=bad, catalog=catalog)


def test_single_relation_query_yields_one_rank() -> None:
    graph, catalog = _instance("chain", 1)
    kbest = k_best_plans(graph, k=4, catalog=catalog)
    assert kbest.k_available == 1
    assert kbest.capture == "single"
    assert kbest.plans[0].is_leaf


# ----------------------------------------------------------------------
# Tracker and table units
# ----------------------------------------------------------------------


def test_tracker_keeps_k_cheapest_deduplicated() -> None:
    tracker = KBestTracker(2)
    a, b = _leaf(0, 10.0), _leaf(1, 20.0)
    cheap = _join(a, b, 5.0)
    mid = _join(b, a, 7.0)
    dear = _join(_leaf(2, 5.0), a, 9.0)

    assert tracker.offer(dear)
    assert tracker.offer(cheap)
    assert not tracker.offer(cheap)  # structural duplicate
    assert tracker.offer(mid)  # displaces `dear`
    assert not tracker.qualifies(9.5)
    assert tracker.qualifies(7.0)  # ties still qualify
    assert [plan.cost for plan in tracker.ranked()] == [5.0, 7.0]
    assert tracker.offered == 4
    assert tracker.admitted == 3
    assert len(tracker) == 2


def test_tracker_equal_cost_tiebreak_is_fingerprint_order() -> None:
    tracker = KBestTracker(1)
    a, b = _leaf(0, 10.0), _leaf(1, 20.0)
    one, two = _join(a, b, 5.0), _join(b, a, 5.0)
    first, second = sorted(
        (one, two), key=plan_fingerprint
    )  # fingerprint order, not offer order
    assert tracker.offer(second)
    tracker.offer(first)  # earlier fingerprint wins the tie
    assert tracker.ranked() == [first]
    # Offering the loser again changes nothing.
    assert not tracker.offer(second)
    assert tracker.ranked() == [first]


def test_tracker_validates_k() -> None:
    for bad in (0, MAX_K + 1):
        with pytest.raises(OptimizerError):
            KBestTracker(bad)


def test_kbest_table_preserves_base_semantics_and_captures() -> None:
    from repro.cost.cout import CoutModel

    tracker = KBestTracker(4)
    table = KBestPlanTable(root_mask=0b11, tracker=tracker)
    graph, catalog = _instance("chain", 2)
    model = CoutModel(graph, catalog)
    a, b = model.leaf(0), model.leaf(1)
    table.register(a)
    table.register(b)
    assert table.consider(model, a, b)
    incumbent = table.get(0b11)
    assert incumbent is not None
    # The commuted candidate has equal C_out cost: the incumbent keeps
    # the slot (base tie-break), but the tracker captures both shapes.
    table.consider(model, b, a)
    assert table.get(0b11) is incumbent
    assert len(tracker) == 2
    # Counter semantics match the base table: register and consider
    # each count one probe (2 leaves + 2 candidates), and the losing
    # commuted candidate is not an improvement.
    assert table.probes == 4
    assert table.improvements == 3

    with pytest.raises(OptimizerError):
        KBestPlanTable(root_mask=0, tracker=tracker)


class TestPostHocGuard:
    """Post-hoc capture must not re-enumerate ladder-scale queries."""

    def test_small_query_gets_posthoc_ranks(self):
        rng = random.Random(5)
        graph = graph_for_topology("chain", 8, rng=rng)
        catalog = random_catalog(8, rng)
        outcome = k_best_plans(graph, k=2, algorithm="goo", catalog=catalog)
        assert outcome.capture == "post-hoc"
        assert outcome.k_available == 2

    def test_large_query_serves_rank_one_only(self):
        # One relation past POSTHOC_MAX_RELATIONS: a DPccp capture pass
        # here is exactly the exponential enumeration the ladder routes
        # large queries around, so ranks 2..k are declined, not stalled.
        n = POSTHOC_MAX_RELATIONS + 1
        rng = random.Random(5)
        graph = graph_for_topology("chain", n, rng=rng)
        catalog = random_catalog(n, rng)
        outcome = k_best_plans(graph, k=2, algorithm="goo", catalog=catalog)
        assert outcome.capture == "single"
        assert outcome.k_available == 1
        assert outcome.plans == (outcome.result.plan,)

    def test_inline_capture_unaffected_by_guard(self):
        # Capturing enumerators keep their in-run ranks at any size the
        # primary run itself can afford.
        rng = random.Random(5)
        graph = graph_for_topology("chain", 8, rng=rng)
        catalog = random_catalog(8, rng)
        outcome = k_best_plans(graph, k=2, algorithm="dpccp", catalog=catalog)
        assert outcome.capture == "inline"
        assert outcome.k_available == 2
