"""Unit tests for the QuickPick sampling baseline."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, QuickPick
from repro.errors import OptimizerError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    random_connected_graph,
)
from repro.plans.visitors import iter_leaves, validate_plan


class TestSampling:
    def test_plans_are_valid_and_cross_product_free(self, rng):
        for _ in range(8):
            n = rng.randint(2, 9)
            graph = random_connected_graph(n, rng, rng.random() * 0.6)
            result = QuickPick(samples=20, rng=1).optimize(
                graph, catalog=random_catalog(n, rng)
            )
            validate_plan(result.plan, graph)
            leaves = sorted(leaf.relation_index for leaf in iter_leaves(result.plan))
            assert leaves == list(range(n))

    @pytest.mark.parametrize("seed", range(6))
    def test_never_beats_the_optimum(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 8)
        graph = random_connected_graph(n, rng, rng.random() * 0.6)
        catalog = random_catalog(n, rng)
        sampled = QuickPick(samples=50, rng=seed).optimize(graph, catalog=catalog)
        exact = DPccp().optimize(graph, catalog=catalog)
        assert sampled.cost >= exact.cost - 1e-9 * max(1.0, exact.cost)

    def test_more_samples_never_hurt_with_shared_stream(self):
        """min over a prefix of the same sample stream can only improve."""
        graph = clique_graph(7, rng=random.Random(3))
        catalog = random_catalog(7, rng=3)
        few = QuickPick(samples=5, rng=9).optimize(graph, catalog=catalog)
        many = QuickPick(samples=200, rng=9).optimize(graph, catalog=catalog)
        assert many.cost <= few.cost

    def test_single_sample_on_tree_is_exactly_the_tree(self):
        """A tree has one spanning structure: any sample covers all."""
        graph = chain_graph(5, selectivity=0.1)
        result = QuickPick(samples=1, rng=4).optimize(graph)
        assert result.plan.size == 5

    def test_deterministic_given_seed(self):
        graph = clique_graph(6, rng=random.Random(5))
        catalog = random_catalog(6, rng=5)
        one = QuickPick(samples=30, rng=8).optimize(graph, catalog=catalog)
        two = QuickPick(samples=30, rng=8).optimize(graph, catalog=catalog)
        assert one.cost == two.cost

    def test_often_finds_the_optimum_on_small_queries(self):
        """With many samples on a 5-relation query, QuickPick ~always wins."""
        rng = random.Random(12)
        graph = random_connected_graph(5, rng, 0.4)
        catalog = random_catalog(5, rng)
        sampled = QuickPick(samples=500, rng=2).optimize(graph, catalog=catalog)
        exact = DPccp().optimize(graph, catalog=catalog)
        assert sampled.cost == pytest.approx(exact.cost)


class TestConfiguration:
    def test_bad_samples_rejected(self):
        with pytest.raises(OptimizerError):
            QuickPick(samples=0)

    def test_samples_property(self):
        assert QuickPick(samples=7).samples == 7

    def test_registry(self):
        from repro.core import make_algorithm

        assert make_algorithm("quickpick").name == "QuickPick"
