"""Unit tests for repro.catalog.catalog."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog, RelationStats
from repro.errors import CatalogError


class TestRelationStats:
    def test_basic(self):
        stats = RelationStats(name="t", cardinality=500.0)
        assert stats.cardinality == 500.0
        assert stats.tuple_bytes > 0

    def test_pages_derived(self):
        stats = RelationStats(name="t", cardinality=10_000, tuple_bytes=100)
        assert stats.pages == pytest.approx(10_000 * 100 / 8192, abs=1)

    def test_explicit_pages_kept(self):
        stats = RelationStats(name="t", cardinality=10, pages=7)
        assert stats.pages == 7

    def test_nonpositive_cardinality_rejected(self):
        with pytest.raises(CatalogError):
            RelationStats(name="t", cardinality=0)

    def test_negative_pages_rejected(self):
        with pytest.raises(CatalogError):
            RelationStats(name="t", cardinality=10, pages=-1)

    def test_nonpositive_width_rejected(self):
        with pytest.raises(CatalogError):
            RelationStats(name="t", cardinality=10, tuple_bytes=0)


class TestCatalog:
    def test_from_cardinalities(self):
        catalog = Catalog.from_cardinalities([10, 20, 30])
        assert len(catalog) == 3
        assert catalog.cardinality(1) == 20
        assert catalog.cardinalities() == (10, 20, 30)

    def test_from_cardinalities_with_names(self):
        catalog = Catalog.from_cardinalities([10, 20], names=["a", "b"])
        assert catalog.by_name("b").cardinality == 20

    def test_name_count_mismatch(self):
        with pytest.raises(CatalogError):
            Catalog.from_cardinalities([10], names=["a", "b"])

    def test_uniform(self):
        catalog = Catalog.uniform(4, 99.0)
        assert all(entry.cardinality == 99.0 for entry in catalog)

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            Catalog([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Catalog(
                [
                    RelationStats(name="x", cardinality=1),
                    RelationStats(name="x", cardinality=2),
                ]
            )

    def test_index_out_of_range(self):
        catalog = Catalog.uniform(2)
        with pytest.raises(CatalogError):
            catalog[5]

    def test_unknown_name(self):
        with pytest.raises(CatalogError):
            Catalog.uniform(2).by_name("missing")

    def test_iteration(self):
        catalog = Catalog.from_cardinalities([1, 2])
        assert [entry.cardinality for entry in catalog] == [1, 2]

    def test_repr(self):
        assert "2" in repr(Catalog.uniform(2))
