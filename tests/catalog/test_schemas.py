"""Unit tests for the ready-made schema workloads."""

from __future__ import annotations

import pytest

from repro.catalog.schemas import (
    snowflake_query,
    star_schema_query,
    tpch_like_query,
)
from repro.core import DPccp
from repro.errors import WorkloadError
from repro.graph.properties import GraphShape, classify_shape, is_star, is_tree
from repro.plans.visitors import validate_plan


class TestStarSchema:
    def test_shape_is_star(self):
        graph, catalog = star_schema_query(6, rng=1)
        assert is_star(graph)
        assert len(catalog) == 7
        assert catalog.by_name("fact").cardinality == 10_000_000

    def test_deterministic_by_seed(self):
        one, _ = star_schema_query(5, rng=42)
        two, _ = star_schema_query(5, rng=42)
        assert one == two

    def test_selectivities_in_range(self):
        graph, _ = star_schema_query(8, rng=3)
        assert all(0 < edge.selectivity <= 1 for edge in graph.edges)

    def test_optimizable(self):
        graph, catalog = star_schema_query(6, rng=2)
        result = DPccp().optimize(graph, catalog=catalog)
        validate_plan(result.plan, graph)

    def test_zero_dimensions_rejected(self):
        with pytest.raises(WorkloadError):
            star_schema_query(0)


class TestSnowflake:
    def test_shape_is_tree(self):
        graph, catalog = snowflake_query(4, depth=2, rng=1)
        assert is_tree(graph)
        assert graph.n_relations == 1 + 4 * 2
        assert len(catalog) == graph.n_relations

    def test_depth_one_is_star(self):
        graph, _ = snowflake_query(5, depth=1, rng=1)
        assert is_star(graph)

    def test_chain_levels_shrink(self):
        graph, catalog = snowflake_query(1, depth=3, rng=7)
        sizes = [
            catalog.by_name(f"dim0_{level}").cardinality for level in range(3)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_optimizable(self):
        graph, catalog = snowflake_query(3, depth=2, rng=5)
        result = DPccp().optimize(graph, catalog=catalog)
        validate_plan(result.plan, graph)

    @pytest.mark.parametrize("kwargs", [{"n_dimensions": 0}, {"n_dimensions": 2, "depth": 0}])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            snowflake_query(**kwargs)


class TestTpchLike:
    def test_eight_relations_cyclic(self):
        graph, catalog = tpch_like_query()
        assert graph.n_relations == 8
        assert graph.is_connected
        # Both branches reach nation: the graph contains a cycle
        # (lineitem-orders-customer-nation-supplier-partsupp-lineitem).
        assert not is_tree(graph)
        assert classify_shape(graph) == GraphShape.GENERAL
        assert catalog.by_name("lineitem").cardinality == 6_000_000

    def test_scale_factor(self):
        _graph, catalog = tpch_like_query(scale=0.1)
        assert catalog.by_name("lineitem").cardinality == pytest.approx(600_000)
        # Tiny fixed tables do not scale.
        assert catalog.by_name("region").cardinality == 5

    def test_optimal_plan_filters_early(self):
        graph, catalog = tpch_like_query()
        result = DPccp().optimize(graph, catalog=catalog)
        validate_plan(result.plan, graph)
        # FK chains keep every intermediate at most lineitem-sized.
        assert result.cost < 8 * 6_000_000

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            tpch_like_query(scale=0)
