"""Unit tests for repro.catalog.synthetic."""

from __future__ import annotations

import random

import pytest

from repro.catalog.synthetic import random_catalog, uniform_catalog, zipfian_catalog
from repro.errors import WorkloadError


class TestUniform:
    def test_basic(self):
        catalog = uniform_catalog(5, 77.0)
        assert len(catalog) == 5
        assert all(entry.cardinality == 77.0 for entry in catalog)

    def test_zero_relations_rejected(self):
        with pytest.raises(WorkloadError):
            uniform_catalog(0)


class TestRandom:
    def test_within_bounds(self):
        catalog = random_catalog(50, rng=3, low=10, high=1000)
        for entry in catalog:
            assert 10 <= entry.cardinality <= 1000 * 1.0001

    def test_deterministic_by_seed(self):
        assert random_catalog(5, rng=11).cardinalities() == random_catalog(
            5, rng=11
        ).cardinalities()

    def test_accepts_random_instance(self):
        catalog = random_catalog(3, rng=random.Random(2))
        assert len(catalog) == 3

    def test_bad_bounds_rejected(self):
        with pytest.raises(WorkloadError):
            random_catalog(3, rng=0, low=100, high=10)
        with pytest.raises(WorkloadError):
            random_catalog(3, rng=0, low=0, high=10)

    def test_zero_relations_rejected(self):
        with pytest.raises(WorkloadError):
            random_catalog(0)


class TestZipfian:
    def test_descending_profile(self):
        catalog = zipfian_catalog(6, base_cardinality=1000.0, skew=1.0)
        cards = catalog.cardinalities()
        assert cards[0] == 1000.0
        assert all(a >= b for a, b in zip(cards, cards[1:]))
        assert cards[3] == pytest.approx(250.0)

    def test_floor_at_one(self):
        catalog = zipfian_catalog(10, base_cardinality=2.0, skew=3.0)
        assert min(catalog.cardinalities()) == 1.0

    def test_zero_skew_uniform(self):
        catalog = zipfian_catalog(4, base_cardinality=500.0, skew=0.0)
        assert set(catalog.cardinalities()) == {500.0}

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_cardinality": 0.0},
            {"skew": -1.0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            zipfian_catalog(3, **kwargs)

    def test_zero_relations_rejected(self):
        with pytest.raises(WorkloadError):
            zipfian_catalog(0)
