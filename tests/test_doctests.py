"""Run the library's docstring examples as tests."""

from __future__ import annotations

import doctest

import pytest

import repro.bitset
import repro.hyper.builder
import repro.io


@pytest.mark.parametrize(
    "module",
    [repro.bitset, repro.io, repro.hyper.builder],
    ids=lambda module: module.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests"
    assert results.failed == 0
