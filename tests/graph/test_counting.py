"""Unit tests for repro.graph.counting: #csg and #ccp."""

from __future__ import annotations

import pytest

from repro.analysis.formulas import ccp_symmetric, csg_count
from repro.errors import GraphError
from repro.graph.counting import (
    count_ccp,
    count_ccp_brute_force,
    count_csg,
    count_csg_brute_force,
)
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    grid_graph,
    random_connected_graph,
    star_graph,
)
from repro.graph.querygraph import QueryGraph


class TestAgainstFormulas:
    """Enumerator counts == brute force == paper Eqs. 5-12."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8])
    def test_chain(self, n):
        graph = chain_graph(n)
        assert count_csg(graph) == csg_count(n, "chain")
        assert count_ccp(graph) == ccp_symmetric(n, "chain")

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 8])
    def test_cycle(self, n):
        graph = cycle_graph(n)
        assert count_csg(graph) == csg_count(n, "cycle")
        assert count_ccp(graph) == ccp_symmetric(n, "cycle")

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8])
    def test_star(self, n):
        graph = star_graph(n)
        assert count_csg(graph) == csg_count(n, "star")
        assert count_ccp(graph) == ccp_symmetric(n, "star")

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8])
    def test_clique(self, n):
        graph = clique_graph(n)
        assert count_csg(graph) == csg_count(n, "clique")
        assert count_ccp(graph) == ccp_symmetric(n, "clique")


class TestBruteForceAgreement:
    def test_random_graphs(self, rng):
        for _ in range(12):
            n = rng.randint(2, 7)
            graph = random_connected_graph(n, rng, rng.random() * 0.6)
            assert count_csg(graph) == count_csg_brute_force(graph)
            assert count_ccp(graph) == count_ccp_brute_force(graph)

    def test_grid(self):
        graph = grid_graph(2, 3)
        assert count_csg(graph) == count_csg_brute_force(graph)
        assert count_ccp(graph) == count_ccp_brute_force(graph)

    def test_non_bfs_numbered_graph(self):
        """Counts are invariant under relabelling (internal renumbering)."""
        graph = QueryGraph(4, [(2, 0), (2, 1), (2, 3)])  # star, hub=2
        assert count_csg(graph) == csg_count(4, "star")
        assert count_ccp(graph) == ccp_symmetric(4, "star")


class TestEdgeCases:
    def test_single_relation(self):
        graph = chain_graph(1)
        assert count_csg(graph) == 1
        assert count_ccp(graph) == 0

    def test_disconnected_rejected(self):
        graph = QueryGraph(3, [(0, 1)])
        for counter in (
            count_csg,
            count_ccp,
            count_csg_brute_force,
            count_ccp_brute_force,
        ):
            with pytest.raises(GraphError):
                counter(graph)

    def test_ccp_always_even(self, rng):
        for _ in range(8):
            graph = random_connected_graph(rng.randint(2, 7), rng, 0.3)
            assert count_ccp(graph) % 2 == 0
