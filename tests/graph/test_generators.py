"""Unit tests for repro.graph.generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.graph.generators import (
    PAPER_TOPOLOGIES,
    chain_graph,
    clique_graph,
    cycle_graph,
    graph_for_topology,
    grid_graph,
    random_connected_graph,
    random_tree_graph,
    star_graph,
)
from repro.graph.properties import (
    is_chain,
    is_clique,
    is_cycle,
    is_star,
    is_tree,
)


class TestChain:
    def test_shape(self):
        graph = chain_graph(6)
        assert is_chain(graph)
        assert len(graph.edges) == 5

    def test_single_relation(self):
        assert chain_graph(1).n_relations == 1

    def test_zero_rejected(self):
        with pytest.raises(WorkloadError):
            chain_graph(0)

    def test_uniform_selectivity(self):
        graph = chain_graph(4, selectivity=0.2)
        assert all(edge.selectivity == 0.2 for edge in graph.edges)

    def test_bad_selectivity_rejected(self):
        with pytest.raises(WorkloadError):
            chain_graph(4, selectivity=0.0)

    def test_rng_selectivities_deterministic(self):
        one = chain_graph(5, rng=random.Random(1))
        two = chain_graph(5, rng=random.Random(1))
        assert [e.selectivity for e in one.edges] == [
            e.selectivity for e in two.edges
        ]


class TestCycle:
    def test_shape(self):
        graph = cycle_graph(5)
        assert is_cycle(graph)
        assert len(graph.edges) == 5

    def test_minimum_size(self):
        with pytest.raises(WorkloadError):
            cycle_graph(2)

    def test_every_degree_two(self):
        graph = cycle_graph(7)
        assert all(graph.degree(i) == 2 for i in range(7))


class TestStar:
    def test_shape(self):
        graph = star_graph(6)
        assert is_star(graph)
        assert graph.degree(0) == 5

    def test_custom_hub(self):
        graph = star_graph(5, hub=2)
        assert graph.degree(2) == 4
        assert is_star(graph)

    def test_hub_out_of_range(self):
        with pytest.raises(WorkloadError):
            star_graph(4, hub=4)

    def test_single_relation(self):
        assert star_graph(1).n_relations == 1


class TestClique:
    def test_shape(self):
        graph = clique_graph(5)
        assert is_clique(graph)
        assert len(graph.edges) == 10

    def test_every_subset_connected(self):
        graph = clique_graph(4)
        for mask in range(1, 16):
            assert graph.is_connected_set(mask)


class TestGrid:
    def test_shape(self):
        graph = grid_graph(2, 3)
        assert graph.n_relations == 6
        assert len(graph.edges) == 7  # 3 vertical + 4 horizontal
        assert graph.is_connected

    def test_degenerate_1xn_is_chain(self):
        assert is_chain(grid_graph(1, 5))

    def test_bad_dimensions(self):
        with pytest.raises(WorkloadError):
            grid_graph(0, 3)


class TestRandomGraphs:
    def test_tree_is_tree(self, rng):
        for n in (1, 2, 5, 12):
            assert is_tree(random_tree_graph(n, rng))

    def test_connected_graph_is_connected(self, rng):
        for _ in range(10):
            graph = random_connected_graph(8, rng, extra_edge_probability=0.3)
            assert graph.is_connected

    def test_extra_probability_one_gives_clique(self, rng):
        graph = random_connected_graph(6, rng, extra_edge_probability=1.0)
        assert is_clique(graph)

    def test_extra_probability_zero_gives_tree(self, rng):
        graph = random_connected_graph(6, rng, extra_edge_probability=0.0)
        assert is_tree(graph)

    def test_bad_probability(self, rng):
        with pytest.raises(WorkloadError):
            random_connected_graph(4, rng, extra_edge_probability=1.5)

    def test_determinism(self):
        one = random_connected_graph(7, random.Random(9), 0.4)
        two = random_connected_graph(7, random.Random(9), 0.4)
        assert one == two


class TestDispatch:
    def test_all_paper_topologies(self):
        for topology in PAPER_TOPOLOGIES:
            graph = graph_for_topology(topology, 5)
            assert graph.n_relations == 5
            assert graph.is_connected

    def test_unknown_topology(self):
        with pytest.raises(WorkloadError):
            graph_for_topology("torus", 5)
