"""Unit tests for repro.graph.builder."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, UnknownRelationError
from repro.graph.builder import QueryGraphBuilder


def warehouse_builder() -> QueryGraphBuilder:
    return (
        QueryGraphBuilder()
        .relation("sales", cardinality=1_000_000)
        .relation("customer", cardinality=50_000)
        .relation("product", cardinality=2_000)
    )


class TestBuilder:
    def test_build_graph_and_catalog_aligned(self):
        graph, catalog = (
            warehouse_builder()
            .join("sales", "customer", selectivity=1 / 50_000)
            .join("sales", "product", selectivity=1 / 2_000)
            .build()
        )
        assert graph.n_relations == 3
        assert len(catalog) == 3
        assert graph.name_of(0) == "sales"
        assert catalog.by_name("sales").cardinality == 1_000_000
        assert catalog.cardinality(graph.index_of("product")) == 2_000

    def test_duplicate_relation_rejected(self):
        builder = QueryGraphBuilder().relation("t")
        with pytest.raises(GraphError):
            builder.relation("t")

    def test_nonpositive_cardinality_rejected(self):
        with pytest.raises(GraphError):
            QueryGraphBuilder().relation("t", cardinality=0)

    def test_join_unknown_relation_rejected(self):
        builder = warehouse_builder()
        with pytest.raises(UnknownRelationError):
            builder.join("sales", "nonexistent")
        with pytest.raises(UnknownRelationError):
            builder.join("nonexistent", "sales")

    def test_foreign_key_selectivity(self):
        graph, _catalog = (
            warehouse_builder()
            .foreign_key("sales", "customer")
            .foreign_key("sales", "product")
            .build()
        )
        by_pair = {edge.endpoints: edge for edge in graph.edges}
        assert by_pair[(0, 1)].selectivity == pytest.approx(1 / 50_000)
        assert by_pair[(0, 2)].selectivity == pytest.approx(1 / 2_000)

    def test_foreign_key_unknown_target(self):
        with pytest.raises(UnknownRelationError):
            warehouse_builder().foreign_key("sales", "nope")

    def test_default_predicate_text(self):
        graph, _ = (
            warehouse_builder().join("sales", "customer").build()
        )
        assert "sales" in (graph.edges[0].predicate or "")

    def test_empty_builder_rejected(self):
        with pytest.raises(GraphError):
            QueryGraphBuilder().build()

    def test_n_relations_property(self):
        assert warehouse_builder().n_relations == 3

    def test_disconnected_build_allowed(self):
        # Connectivity is the optimizer's concern, not the builder's.
        graph, _ = warehouse_builder().build()
        assert not graph.is_connected

    def test_fluent_chaining_returns_self(self):
        builder = QueryGraphBuilder()
        assert builder.relation("a") is builder
        builder.relation("b")
        assert builder.join("a", "b") is builder
