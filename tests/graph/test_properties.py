"""Unit tests for repro.graph.properties."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    grid_graph,
    star_graph,
)
from repro.graph.properties import (
    GraphShape,
    classify_shape,
    density,
    is_chain,
    is_clique,
    is_cycle,
    is_star,
    is_tree,
)
from repro.graph.querygraph import QueryGraph


class TestRecognisers:
    def test_chain(self):
        assert is_chain(chain_graph(5))
        assert not is_chain(star_graph(5))
        assert not is_chain(cycle_graph(5))

    def test_chain_degenerates(self):
        assert is_chain(chain_graph(1))
        assert is_chain(chain_graph(2))

    def test_cycle(self):
        assert is_cycle(cycle_graph(4))
        assert not is_cycle(chain_graph(4))
        # Triangle is simultaneously cycle and clique.
        assert is_cycle(cycle_graph(3))

    def test_star(self):
        assert is_star(star_graph(5))
        assert is_star(star_graph(5, hub=3)), "hub position must not matter"
        assert not is_star(chain_graph(5))

    def test_clique(self):
        assert is_clique(clique_graph(4))
        assert is_clique(clique_graph(1))
        assert not is_clique(cycle_graph(4))

    def test_tree(self):
        assert is_tree(chain_graph(5))
        assert is_tree(star_graph(5))
        assert not is_tree(cycle_graph(5))
        # A chain with one extra relation missing its edge: disconnected.
        assert not is_tree(QueryGraph(3, [(0, 1)]))

    def test_path_disguised_as_star(self):
        # n=3 star with hub 0 is a path 1-0-2: both chain and star.
        graph = star_graph(3)
        assert is_star(graph)
        assert is_chain(graph)


class TestClassify:
    @pytest.mark.parametrize(
        "graph, shape",
        [
            (chain_graph(5), GraphShape.CHAIN),
            (cycle_graph(5), GraphShape.CYCLE),
            (star_graph(5), GraphShape.STAR),
            (clique_graph(5), GraphShape.CLIQUE),
            (grid_graph(2, 3), GraphShape.GENERAL),
        ],
        ids=["chain", "cycle", "star", "clique", "grid"],
    )
    def test_paper_shapes(self, graph, shape):
        assert classify_shape(graph) == shape

    def test_triangle_prefers_clique(self):
        assert classify_shape(cycle_graph(3)) == GraphShape.CLIQUE

    def test_two_relations_prefers_chain(self):
        assert classify_shape(chain_graph(2)) == GraphShape.CHAIN

    def test_generic_tree(self):
        # A "broom": path 0-1-2 plus leaves 3,4 on node 2.
        graph = QueryGraph(5, [(0, 1), (1, 2), (2, 3), (2, 4)])
        assert classify_shape(graph) == GraphShape.TREE


class TestDensity:
    def test_clique_density_one(self):
        assert density(clique_graph(6)) == pytest.approx(1.0)

    def test_chain_density(self):
        assert density(chain_graph(5)) == pytest.approx(4 / 10)

    def test_single_relation(self):
        assert density(chain_graph(1)) == 0.0
