"""Unit tests for EnumerateCsg / EnumerateCsgRec / EnumerateCmp.

These check the paper's correctness lemmas directly:
* every connected set emitted exactly once (Lemmas 8, 10),
* subsets before supersets (Lemma 12),
* csg-cmp-pairs each in exactly one orientation (Theorem 2),
* the worked examples from paper §3.2/§3.3 (Figures 6-7).
"""

from __future__ import annotations

import random

import pytest

from repro import bitset
from repro.errors import GraphError
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    random_connected_graph,
    star_graph,
)
from repro.graph.querygraph import QueryGraph
from repro.graph.subgraphs import (
    enumerate_cmp,
    enumerate_csg,
    enumerate_csg_cmp_pairs,
)


def paper_figure6_graph() -> QueryGraph:
    """The 5-node example of paper Figure 6.

    Edges reconstructed from the Figure 7 call table: R0 joined to
    R1, R2, R3; R4 joined to R1, R2, R3; plus R2 - R3 (the table shows
    N({2}) \\ {0,1,2} = {3,4}). Reproduces the enumeration table of
    Figure 7 and the EnumerateCmp example with N({R1}) = {R0, R4}.
    """
    return QueryGraph(
        5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
    )


def bfs(graph: QueryGraph) -> QueryGraph:
    """Renumber to satisfy the enumerators' precondition (cycles etc.)."""
    if graph.is_bfs_numbered():
        return graph
    renumbered, _order = graph.bfs_renumbered()
    return renumbered


def brute_force_connected_sets(graph: QueryGraph) -> set[int]:
    return {
        mask
        for mask in range(1, graph.all_relations + 1)
        if graph.is_connected_set(mask)
    }


class TestEnumerateCsg:
    @pytest.mark.parametrize(
        "graph",
        [
            chain_graph(1),
            chain_graph(2),
            chain_graph(6),
            bfs(cycle_graph(5)),
            star_graph(6),
            clique_graph(5),
            paper_figure6_graph(),
        ],
        ids=["chain1", "chain2", "chain6", "cycle5", "star6", "clique5", "fig6"],
    )
    def test_exactly_all_connected_sets_once(self, graph):
        emitted = list(enumerate_csg(graph))
        assert len(emitted) == len(set(emitted)), "duplicates emitted"
        assert set(emitted) == brute_force_connected_sets(graph)

    def test_subsets_emitted_before_supersets(self):
        graph = paper_figure6_graph()
        position = {mask: i for i, mask in enumerate(enumerate_csg(graph))}
        for mask, index in position.items():
            for other, other_index in position.items():
                if other != mask and bitset.is_subset(other, mask):
                    assert other_index < index, (
                        f"{bitset.format_bits(other)} after "
                        f"{bitset.format_bits(mask)}"
                    )

    def test_start_nodes_descending(self):
        # The first emission is {v_{n-1}}, the last block starts at {v_0}.
        graph = chain_graph(4)
        emitted = list(enumerate_csg(graph))
        assert emitted[0] == bitset.bit(3)
        assert bitset.bit(0) in emitted

    def test_figure7_first_emissions(self):
        """Paper Figure 7: per start node, the first emitted supersets."""
        graph = paper_figure6_graph()
        emitted = list(enumerate_csg(graph))
        want_prefix = [
            {4},            # start node v4
            {3},            # start node v3
            {3, 4},
            {2},            # start node v2: N({2}) \ B_2 = {3, 4}
            {2, 3},
            {2, 4},
            {2, 3, 4},
            {1},            # start node v1: N({1}) \ B_1 = {4}
            {1, 4},
        ]
        got_prefix = [
            set(bitset.iter_bits(mask)) for mask in emitted[: len(want_prefix)]
        ]
        assert got_prefix == want_prefix

    def test_non_bfs_numbered_rejected(self):
        star_off_center = QueryGraph(4, [(2, 0), (2, 1), (2, 3)])
        with pytest.raises(GraphError):
            list(enumerate_csg(star_off_center))

    def test_trust_numbering_skips_check(self):
        star_off_center = QueryGraph(4, [(2, 0), (2, 1), (2, 3)])
        # With the check disabled the generator runs; the *set* of
        # emissions is then not guaranteed — only that it runs.
        emitted = list(enumerate_csg(star_off_center, trust_numbering=True))
        assert emitted


class TestEnumerateCmp:
    def test_paper_example_s1_r1(self):
        """Paper §3.3: S1 = {R1} on the Figure 6 graph."""
        graph = paper_figure6_graph()
        complements = list(enumerate_cmp(graph, bitset.bit(1)))
        want = [
            {4},
            {2, 4},
            {3, 4},
            {2, 3, 4},
        ]
        got = [set(bitset.iter_bits(mask)) for mask in complements]
        assert got == want

    def test_empty_s1_rejected(self):
        with pytest.raises(GraphError):
            list(enumerate_cmp(chain_graph(3), 0))

    def test_complements_are_valid(self):
        graph = bfs(cycle_graph(6))
        for subset in enumerate_csg(graph):
            for complement in enumerate_cmp(graph, subset):
                assert subset & complement == 0
                assert graph.is_connected_set(complement)
                assert graph.are_connected(subset, complement)

    def test_ordering_restriction(self):
        """S2 contains only labels above min(S1) — duplicate avoidance."""
        graph = clique_graph(5)
        for subset in enumerate_csg(graph):
            low = bitset.lowest_bit_index(subset)
            for complement in enumerate_cmp(graph, subset):
                assert bitset.lowest_bit_index(complement) > low


class TestCsgCmpPairs:
    @pytest.mark.parametrize(
        "graph",
        [
            chain_graph(2),
            chain_graph(7),
            bfs(cycle_graph(6)),
            star_graph(6),
            clique_graph(5),
            paper_figure6_graph(),
        ],
        ids=["chain2", "chain7", "cycle6", "star6", "clique5", "fig6"],
    )
    def test_each_unordered_pair_exactly_once(self, graph):
        seen: set[frozenset[int]] = set()
        for left, right in enumerate_csg_cmp_pairs(graph):
            key = frozenset((left, right))
            assert key not in seen, "pair emitted twice (or in both orders)"
            seen.add(key)
        # Ground truth: brute-force pair count (unordered).
        expected = set()
        for whole in range(1, graph.all_relations + 1):
            if not graph.is_connected_set(whole):
                continue
            for left in bitset.iter_subsets(whole):
                right = whole ^ left
                if (
                    graph.is_connected_set(left)
                    and graph.is_connected_set(right)
                    and graph.are_connected(left, right)
                ):
                    expected.add(frozenset((left, right)))
        assert seen == expected

    def test_dp_valid_order(self):
        """When a pair is emitted, its components' sub-pairs came first.

        Sufficient check for the DP precondition: every emitted set of
        size > 1 must already have appeared as the union of a
        previously emitted pair.
        """
        for graph in (chain_graph(7), bfs(cycle_graph(6)), clique_graph(5),
                      star_graph(6), paper_figure6_graph()):
            solvable: set[int] = set()
            for index in range(graph.n_relations):
                solvable.add(bitset.bit(index))
            for left, right in enumerate_csg_cmp_pairs(graph):
                assert left in solvable, "left side not yet constructible"
                assert right in solvable, "right side not yet constructible"
                solvable.add(left | right)
            assert graph.all_relations in solvable

    def test_random_graphs_pair_sets(self, rng):
        for _ in range(15):
            n = rng.randint(2, 8)
            graph = random_connected_graph(n, rng, rng.random() * 0.7)
            if not graph.is_bfs_numbered():
                graph, _ = graph.bfs_renumbered()
            pairs = list(enumerate_csg_cmp_pairs(graph))
            keys = {frozenset((a, b)) for a, b in pairs}
            assert len(keys) == len(pairs)


class TestBoundedEnumeration:
    """max_size / max_union_size prune without changing semantics."""

    @pytest.mark.parametrize("cap", [1, 2, 3, 5, 7])
    def test_csg_cap_equals_filtered_full_enumeration(self, cap):
        graph = paper_figure6_graph()
        full = [
            mask for mask in enumerate_csg(graph) if bitset.popcount(mask) <= cap
        ]
        capped = list(enumerate_csg(graph, max_size=cap))
        assert capped == full, "cap must preserve order and content"

    @pytest.mark.parametrize("cap", [2, 3, 4, 6])
    def test_pair_cap_equals_filtered_full_stream(self, cap, rng):
        for _ in range(8):
            graph = random_connected_graph(rng.randint(2, 7), rng, rng.random())
            if not graph.is_bfs_numbered():
                graph, _ = graph.bfs_renumbered()
            full = [
                pair
                for pair in enumerate_csg_cmp_pairs(graph)
                if bitset.popcount(pair[0]) + bitset.popcount(pair[1]) <= cap
            ]
            capped = list(enumerate_csg_cmp_pairs(graph, max_union_size=cap))
            assert capped == full

    def test_cap_zero_yields_nothing(self):
        graph = chain_graph(4)
        assert list(enumerate_csg(graph, max_size=0)) == []

    def test_cap_prunes_rather_than_filters(self):
        """The capped stream must not visit oversized sets at all.

        Observable via work: a clique's full stream is ~3^n/2 pairs;
        with cap 2 only the edges remain, and the enumeration must be
        proportional to that, which we approximate by checking the
        emitted csg sets of size <= 1 feed it.
        """
        graph = clique_graph(10)
        pairs = list(enumerate_csg_cmp_pairs(graph, max_union_size=2))
        assert len(pairs) == 45  # one per clique edge
        assert all(
            bitset.popcount(a) == 1 and bitset.popcount(b) == 1 for a, b in pairs
        )
