"""Unit tests for repro.graph.querygraph."""

from __future__ import annotations

import pytest

from repro import bitset
from repro.errors import GraphError, UnknownRelationError
from repro.graph.querygraph import JoinEdge, QueryGraph, remap_mask


def path4() -> QueryGraph:
    """R0 - R1 - R2 - R3."""
    return QueryGraph(4, [(0, 1), (1, 2), (2, 3)])


class TestJoinEdge:
    def test_normalized_orders_endpoints(self):
        edge = JoinEdge(3, 1, 0.5)
        normalized = edge.normalized()
        assert normalized.left == 1 and normalized.right == 3
        assert normalized.selectivity == 0.5

    def test_endpoints_sorted(self):
        assert JoinEdge(3, 1).endpoints == (1, 3)

    def test_mask(self):
        assert JoinEdge(0, 2).mask() == 0b101

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            JoinEdge(1, 1)

    def test_negative_index_rejected(self):
        with pytest.raises(GraphError):
            JoinEdge(-1, 0)

    @pytest.mark.parametrize("selectivity", [0.0, -0.5, 1.5])
    def test_bad_selectivity_rejected(self, selectivity):
        with pytest.raises(GraphError):
            JoinEdge(0, 1, selectivity)

    def test_selectivity_one_allowed(self):
        assert JoinEdge(0, 1, 1.0).selectivity == 1.0


class TestConstruction:
    def test_zero_relations_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph(0)

    def test_default_names(self):
        graph = QueryGraph(3)
        assert graph.names == ("R0", "R1", "R2")

    def test_custom_names(self):
        graph = QueryGraph(2, [(0, 1)], names=["orders", "customer"])
        assert graph.name_of(0) == "orders"
        assert graph.index_of("customer") == 1

    def test_wrong_name_count_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph(2, names=["only_one"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph(2, names=["same", "same"])

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(UnknownRelationError):
            QueryGraph(2, [(0, 5)])

    def test_tuples_accepted_as_edges(self):
        graph = QueryGraph(2, [(0, 1, 0.25)])
        assert graph.edges[0].selectivity == 0.25

    def test_parallel_edges_merge_selectivities(self):
        graph = QueryGraph(2, [(0, 1, 0.5), (1, 0, 0.5)])
        assert len(graph.edges) == 1
        assert graph.edges[0].selectivity == pytest.approx(0.25)

    def test_parallel_edges_merge_predicates(self):
        graph = QueryGraph(
            2,
            [JoinEdge(0, 1, 0.5, "a = b"), JoinEdge(0, 1, 0.5, "c = d")],
        )
        assert graph.edges[0].predicate == "a = b AND c = d"

    def test_unknown_name_lookup(self):
        graph = QueryGraph(2, [(0, 1)])
        with pytest.raises(UnknownRelationError):
            graph.index_of("nope")
        with pytest.raises(UnknownRelationError):
            graph.name_of(9)

    def test_equality_and_hash(self):
        assert path4() == path4()
        assert hash(path4()) == hash(path4())
        assert path4() != QueryGraph(4, [(0, 1), (1, 2)])

    def test_repr(self):
        assert "4" in repr(path4())


class TestNeighborhoods:
    def test_single_node_neighbors(self):
        graph = path4()
        assert graph.neighbor_mask(0) == 0b0010
        assert graph.neighbor_mask(1) == 0b0101
        assert graph.neighbor_masks[2] == 0b1010

    def test_degree(self):
        graph = path4()
        assert graph.degree(0) == 1
        assert graph.degree(1) == 2

    def test_set_neighborhood_excludes_set(self):
        graph = path4()
        assert graph.neighborhood(0b0110) == 0b1001

    def test_neighborhood_of_everything_is_empty(self):
        graph = path4()
        assert graph.neighborhood(graph.all_relations) == 0

    def test_neighborhood_of_empty_set(self):
        assert path4().neighborhood(0) == 0

    def test_edges_of(self):
        graph = path4()
        assert len(graph.edges_of(1)) == 2
        assert len(graph.edges_of(0)) == 1


class TestConnectedness:
    def test_empty_set_not_connected(self):
        assert not path4().is_connected_set(0)

    def test_singletons_connected(self):
        graph = path4()
        for index in range(4):
            assert graph.is_connected_set(bitset.bit(index))

    def test_contiguous_runs_connected(self):
        graph = path4()
        assert graph.is_connected_set(0b0011)
        assert graph.is_connected_set(0b1110)
        assert graph.is_connected_set(0b1111)

    def test_gaps_not_connected(self):
        graph = path4()
        assert not graph.is_connected_set(0b0101)
        assert not graph.is_connected_set(0b1001)

    def test_are_connected(self):
        graph = path4()
        assert graph.are_connected(0b0001, 0b0010)
        assert not graph.are_connected(0b0001, 0b0100)
        assert graph.are_connected(0b0011, 0b0100)

    def test_are_connected_empty_side(self):
        graph = path4()
        assert not graph.are_connected(0, 0b1)
        assert not graph.are_connected(0b1, 0)

    def test_whole_graph_connected(self):
        assert path4().is_connected
        assert not QueryGraph(3, [(0, 1)]).is_connected

    def test_single_relation_graph_connected(self):
        assert QueryGraph(1).is_connected


class TestCrossingEdges:
    def test_crossing_edges_found_once(self):
        graph = QueryGraph(4, [(0, 1, 0.5), (0, 2, 0.25), (1, 2, 0.1), (2, 3, 0.2)])
        crossing = list(graph.crossing_edges(0b0011, 0b0100))
        assert {edge.endpoints for edge in crossing} == {(0, 2), (1, 2)}

    def test_crossing_selectivity_multiplies(self):
        graph = QueryGraph(3, [(0, 2, 0.5), (1, 2, 0.1)])
        assert graph.crossing_selectivity(0b011, 0b100) == pytest.approx(0.05)

    def test_crossing_selectivity_defaults_to_one(self):
        graph = path4()
        assert graph.crossing_selectivity(0b0001, 0b0100) == 1.0

    def test_internal_edges(self):
        graph = path4()
        internal = list(graph.internal_edges(0b0111))
        assert {edge.endpoints for edge in internal} == {(0, 1), (1, 2)}


class TestBfs:
    def test_bfs_order_path(self):
        assert path4().bfs_order(0) == [0, 1, 2, 3]
        assert path4().bfs_order(2) == [2, 1, 3, 0]

    def test_bfs_order_invalid_start(self):
        with pytest.raises(UnknownRelationError):
            path4().bfs_order(10)

    def test_is_bfs_numbered(self):
        assert path4().is_bfs_numbered()
        # Star with hub at index 2 is not BFS-numbered from node 0.
        star_off_center = QueryGraph(4, [(2, 0), (2, 1), (2, 3)])
        assert not star_off_center.is_bfs_numbered()

    def test_disconnected_graph_not_bfs_numbered(self):
        assert not QueryGraph(3, [(0, 1)]).is_bfs_numbered()

    def test_bfs_renumbered_is_bfs_numbered(self):
        star_off_center = QueryGraph(4, [(2, 0), (2, 1), (2, 3)])
        renumbered, order = star_off_center.bfs_renumbered()
        assert renumbered.is_bfs_numbered()
        assert sorted(order) == [0, 1, 2, 3]

    def test_bfs_renumbered_preserves_structure(self):
        graph = QueryGraph(4, [(2, 0, 0.5), (2, 1, 0.25), (2, 3, 0.125)])
        renumbered, order = graph.bfs_renumbered()
        assert len(renumbered.edges) == len(graph.edges)
        assert {round(e.selectivity, 3) for e in renumbered.edges} == {
            0.5, 0.25, 0.125
        }
        # Names travel with the relations.
        assert renumbered.names[0] == graph.names[order[0]]

    def test_bfs_renumbered_disconnected_rejected(self):
        with pytest.raises(GraphError):
            QueryGraph(3, [(0, 1)]).bfs_renumbered()

    def test_relabelled_roundtrip(self):
        graph = path4()
        permutation = [3, 2, 1, 0]
        relabelled = graph.relabelled(permutation)
        assert {edge.endpoints for edge in relabelled.edges} == {
            (0, 1), (1, 2), (2, 3)
        }
        assert relabelled.names == ("R3", "R2", "R1", "R0")

    def test_relabelled_requires_permutation(self):
        with pytest.raises(GraphError):
            path4().relabelled([0, 0, 1, 2])


class TestRemapMask:
    def test_identity(self):
        assert remap_mask(0b101, [0, 1, 2]) == 0b101

    def test_permutation(self):
        assert remap_mask(0b011, [2, 0, 1]) == 0b101
