"""Tests for canonical graph ordering and QueryGraph.canonical_form().

These lock in the determinism contract the service-layer fingerprints
depend on: canonical numbering must be a pure function of graph
structure (plus optional node keys), invariant under relabeling, and
stable across repeated calls within and across processes.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph import canonical_order
from repro.graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    graph_for_topology,
    random_connected_graph,
    star_graph,
)
from repro.graph.querygraph import QueryGraph

TOPOLOGIES = ("chain", "cycle", "star", "clique")


def canonical_signature(graph):
    """Structure of the canonical twin, as a comparable value."""
    twin, _ = graph.canonical_form()
    return (
        twin.n_relations,
        tuple(
            sorted(
                (min(e.left, e.right), max(e.left, e.right), e.selectivity)
                for e in twin.edges
            )
        ),
    )


class TestCanonicalOrder:
    def test_is_a_permutation(self):
        rng = random.Random(0)
        graph = random_connected_graph(9, rng, 0.4)
        order = canonical_order(graph)
        assert sorted(order) == list(range(9))

    def test_single_relation(self):
        assert canonical_order(QueryGraph(1, [])) == [0]

    def test_deterministic_across_calls(self):
        rng = random.Random(4)
        graph = random_connected_graph(8, rng, 0.5)
        assert canonical_order(graph) == canonical_order(graph)

    def test_rejects_disconnected(self):
        graph = QueryGraph(4, [(0, 1, 0.5), (2, 3, 0.5)])
        with pytest.raises(GraphError):
            canonical_order(graph)

    def test_rejects_wrong_node_key_count(self):
        graph = chain_graph(4, selectivity=0.5)
        with pytest.raises(GraphError):
            canonical_order(graph, node_keys=[1, 2])

    def test_node_keys_steer_the_order(self):
        # a symmetric chain: endpoints are automorphic without keys
        graph = chain_graph(3, selectivity=0.5)
        left_heavy = canonical_order(graph, node_keys=[1, 2, 2])
        right_heavy = canonical_order(graph, node_keys=[2, 2, 1])
        # the distinguished endpoint must land in the same canonical slot
        assert left_heavy.index(0) == right_heavy.index(2)

    def test_edge_keys_override_selectivity(self):
        graph = chain_graph(3, selectivity=0.5)
        overridden = canonical_order(
            graph, edge_keys={(0, 1): 0.9, (1, 2): 0.1}
        )
        flipped = canonical_order(
            graph, edge_keys={(0, 1): 0.1, (1, 2): 0.9}
        )
        assert overridden.index(0) == flipped.index(2)


class TestRelabelingInvariance:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_structured_topologies(self, topology):
        rng = random.Random(11)
        graph = graph_for_topology(topology, 9, rng=rng)
        reference = canonical_signature(graph)
        for seed in range(8):
            permutation = list(range(9))
            random.Random(seed).shuffle(permutation)
            assert canonical_signature(graph.relabelled(permutation)) == reference

    def test_random_graphs(self):
        for seed in range(25):
            rng = random.Random(seed)
            n = rng.randrange(2, 12)
            graph = random_connected_graph(n, rng, rng.random())
            permutation = list(range(n))
            rng.shuffle(permutation)
            assert canonical_signature(graph.relabelled(permutation)) == (
                canonical_signature(graph)
            )

    def test_distinct_shapes_stay_distinct(self):
        signatures = {
            canonical_signature(g)
            for g in (
                chain_graph(7, selectivity=0.25),
                cycle_graph(7, selectivity=0.25),
                star_graph(7, selectivity=0.25),
                clique_graph(7, selectivity=0.25),
            )
        }
        assert len(signatures) == 4


class TestCanonicalForm:
    def test_returns_isomorphic_graph_and_mapping(self):
        rng = random.Random(2)
        graph = random_connected_graph(7, rng, 0.3)
        twin, old_of_new = graph.canonical_form()
        assert sorted(old_of_new) == list(range(7))
        assert twin.n_relations == graph.n_relations
        assert len(twin.edges) == len(graph.edges)
        # every canonical edge maps back to an original edge with the
        # same selectivity
        original = {
            (min(e.left, e.right), max(e.left, e.right)): e.selectivity
            for e in graph.edges
        }
        for edge in twin.edges:
            a, b = old_of_new[edge.left], old_of_new[edge.right]
            assert original[(min(a, b), max(a, b))] == edge.selectivity

    def test_canonical_form_is_idempotent(self):
        rng = random.Random(6)
        graph = random_connected_graph(8, rng, 0.4)
        twin, _ = graph.canonical_form()
        twin_twice, identity_order = twin.canonical_form()
        assert canonical_signature(twin) == canonical_signature(twin_twice)
        # re-canonicalizing the canonical twin is a no-op relabeling
        assert identity_order == list(range(8))

    def test_names_follow_their_relations(self):
        graph = QueryGraph(
            3,
            [(0, 1, 0.1), (1, 2, 0.2)],
            names=["orders", "lineitem", "nation"],
        )
        twin, old_of_new = graph.canonical_form()
        for new_index, old_index in enumerate(old_of_new):
            assert twin.names[new_index] == graph.names[old_index]
