"""Unit tests for the obs counter registry."""

from __future__ import annotations

from repro.obs import Counter, CounterRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.increment()
        counter.increment(41)
        assert counter.value == 42


class TestCounterRegistry:
    def test_counters_are_singletons_by_name(self):
        registry = CounterRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_increment_and_value(self):
        registry = CounterRegistry()
        registry.increment("x")
        registry.increment("x", 4)
        assert registry.value("x") == 5

    def test_value_of_unknown_counter_is_zero_without_creating_it(self):
        registry = CounterRegistry()
        assert registry.value("never") == 0
        assert len(registry) == 0

    def test_snapshot_is_sorted_and_plain(self):
        registry = CounterRegistry()
        registry.increment("b", 2)
        registry.increment("a", 1)
        assert registry.snapshot() == {"a": 1, "b": 2}
        assert list(registry.snapshot()) == ["a", "b"]

    def test_names(self):
        registry = CounterRegistry()
        registry.increment("z")
        registry.increment("m")
        assert registry.names() == ["m", "z"]
