"""Unit tests for spans, nesting, and the tracer's retention rules."""

from __future__ import annotations

import threading
import time

from repro.obs import Instrumentation, Tracer, render_span_tree


class TestNesting:
    def test_child_spans_nest_under_the_active_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-2"):
                pass
        assert [child.name for child in root.children] == ["child-1", "child-2"]
        assert root.children[0].children[0].name == "grandchild"
        assert len(tracer) == 1  # only the root is retained as a root

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [span.name for span in tracer.last_root().walk()]
        assert names == ["a", "b", "c", "d"]

    def test_timings_are_populated_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        outer = tracer.last_root()
        inner = outer.children[0]
        assert inner.wall_seconds >= 0.002
        assert outer.wall_seconds >= inner.wall_seconds
        assert outer.cpu_seconds >= 0.0

    def test_attributes_can_be_added_while_open(self):
        tracer = Tracer()
        with tracer.span("request", n=5) as span:
            span.attributes["outcome"] = "hit"
        root = tracer.last_root()
        assert root.attributes == {"n": 5, "outcome": "hit"}

    def test_exception_still_closes_and_retains_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.last_root().name == "boom"
        assert len(tracer) == 1


class TestRetention:
    def test_capacity_bounds_retained_roots(self):
        tracer = Tracer(capacity=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert [root.name for root in tracer.roots()] == ["s7", "s8", "s9"]

    def test_roots_filter_by_name(self):
        tracer = Tracer()
        for name in ("a", "b", "a"):
            with tracer.span(name):
                pass
        assert len(tracer.roots("a")) == 2
        assert len(tracer.roots("b")) == 1

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots() == []
        assert tracer.last_root() is None

    def test_threads_build_independent_trees(self):
        tracer = Tracer()

        def worker(label: str):
            with tracer.span(label):
                with tracer.span(f"{label}-child"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.roots()
        assert len(roots) == 4  # one root per thread, never cross-nested
        for root in roots:
            assert [child.name for child in root.children] == [f"{root.name}-child"]


class TestRendering:
    def test_render_span_tree(self):
        tracer = Tracer()
        with tracer.span("root", topology="star") as span:
            with tracer.span("leaf"):
                pass
        text = render_span_tree(tracer.last_root())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "topology=star" in lines[0]
        assert lines[1].startswith("  leaf")
        assert "wall=" in lines[0] and "cpu=" in lines[0]

    def test_as_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", k=1):
            with tracer.span("b"):
                pass
        data = tracer.last_root().as_dict()
        assert data["name"] == "a"
        assert data["attributes"] == {"k": 1}
        assert data["children"][0]["name"] == "b"
        assert data["wall_ms"] >= data["children"][0]["wall_ms"]


class TestDisabledInstrumentation:
    def test_disabled_span_records_nothing(self):
        obs = Instrumentation(enabled=False)
        with obs.span("invisible") as span:
            assert span is None
        obs.count("c", 5)
        obs.observe("h", 0.1)
        assert len(obs.tracer) == 0
        assert obs.counters.snapshot() == {}
        assert obs.histograms.snapshot() == {}
