"""Overhead guard: obs off means no obs work on the enumeration hot path.

Two layers of protection:

* a *structural* guarantee — with instrumentation enabled, the number
  of obs API calls per run is a small constant (span + one counter
  publication), never proportional to ``InnerCounter``; with it
  disabled (``None``), the enumerator cannot touch obs at all because
  no object is ever passed in. This is the property that actually
  keeps the fast path fast, and it is deterministic.
* a *timing* spot-check — instrumented and uninstrumented runs of the
  same enumeration are indistinguishable up to scheduler noise. The
  design target is <= 5% overhead; the assertion uses a wider margin
  (25%) because CI machines jitter far more than the obs layer costs,
  while a per-inner-iteration regression (the bug this guards against)
  would show up as 2-10x, not 1.25x.
"""

from __future__ import annotations

import time

from repro.core import DPccp, DPsub
from repro.graph.generators import chain_graph, clique_graph
from repro.obs import Instrumentation


class SpyInstrumentation(Instrumentation):
    """Counts every obs API invocation."""

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def span(self, name, **attributes):
        self.calls += 1
        return super().span(name, **attributes)

    def count(self, name, amount=1):
        self.calls += 1
        super().count(name, amount)

    def observe(self, name, seconds):
        self.calls += 1
        super().observe(name, seconds)

    def record_optimization(self, result):
        self.calls += 1
        super().record_optimization(result)


class TestStructuralGuarantee:
    def test_obs_calls_are_constant_per_run(self):
        """Obs traffic must not scale with the enumeration's work."""
        small, large = chain_graph(4), chain_graph(14)
        calls = {}
        for label, graph in (("small", small), ("large", large)):
            spy = SpyInstrumentation()
            DPccp().optimize(graph, instrumentation=spy)
            calls[label] = spy.calls
        # 14 relations do ~30x the inner-loop work of 4; obs traffic
        # stays identical because publication happens once per run.
        assert calls["small"] == calls["large"]
        assert calls["large"] <= 4

    def test_dpsub_hot_loop_is_obs_free(self):
        """57k inner iterations, still O(1) obs calls."""
        spy = SpyInstrumentation()
        result = DPsub().optimize(clique_graph(10), instrumentation=spy)
        assert result.counters.inner_counter > 50_000
        assert spy.calls <= 4

    def test_counters_identical_with_and_without_obs(self):
        """Instrumentation must observe, never perturb."""
        graph = chain_graph(9)
        plain = DPccp().optimize(graph)
        observed = DPccp().optimize(graph, instrumentation=Instrumentation())
        assert plain.counters.as_dict() == observed.counters.as_dict()
        assert plain.cost == observed.cost
        assert plain.table_probes == observed.table_probes


def _min_runtime(run, repeats: int = 5) -> float:
    """Min-of-N wall time — the standard noise-resistant micro timing."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


class TestTimingGuard:
    def test_instrumented_run_is_not_slower(self):
        graph = clique_graph(9)  # ~19k inner iterations per run
        algorithm = DPsub()
        obs = Instrumentation()
        # Warm up both paths (bytecode caches, branch history).
        algorithm.optimize(graph)
        algorithm.optimize(graph, instrumentation=obs)
        disabled = _min_runtime(lambda: algorithm.optimize(graph))
        enabled = _min_runtime(
            lambda: algorithm.optimize(graph, instrumentation=obs)
        )
        assert enabled <= disabled * 1.25, (
            f"instrumented enumeration {enabled * 1000:.2f}ms vs "
            f"uninstrumented {disabled * 1000:.2f}ms — obs work leaked "
            "onto the hot path"
        )
