"""Exporter tests: JSON snapshot, Prometheus text format, human report."""

from __future__ import annotations

import json

from repro.core import DPccp
from repro.graph.generators import star_graph
from repro.obs import Instrumentation, render_report, to_json, to_prometheus
from repro.obs.export import metric_name


def instrumented_run() -> Instrumentation:
    obs = Instrumentation()
    DPccp().optimize(star_graph(6, selectivity=0.1), instrumentation=obs)
    return obs


class TestJson:
    def test_snapshot_round_trips(self):
        obs = instrumented_run()
        snapshot = json.loads(to_json(obs.snapshot()))
        assert snapshot["counters"]["enumerator.DPccp.inner_loop_tests"] == 80
        assert (
            snapshot["histograms"]["enumerator.DPccp.optimize_seconds"]["count"]
            == 1
        )
        spans = snapshot["spans"]
        assert spans and spans[-1]["name"] == "optimize:DPccp"
        assert spans[-1]["attributes"]["n_relations"] == 6

    def test_spans_can_be_omitted(self):
        obs = instrumented_run()
        assert "spans" not in obs.snapshot(include_spans=False)


class TestPrometheus:
    def test_metric_names_are_sanitized(self):
        assert (
            metric_name("enumerator.DPccp.inner_loop_tests")
            == "repro_enumerator_DPccp_inner_loop_tests"
        )

    def test_counters_and_summaries(self):
        obs = instrumented_run()
        text = to_prometheus(obs.snapshot(include_spans=False))
        assert "# TYPE repro_enumerator_DPccp_inner_loop_tests counter" in text
        assert "repro_enumerator_DPccp_inner_loop_tests 80" in text
        assert (
            "# TYPE repro_enumerator_DPccp_optimize_seconds_seconds summary"
            in text
        )
        assert 'quantile="0.99"' in text
        assert "repro_enumerator_DPccp_optimize_seconds_seconds_count 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({"counters": {}, "histograms": {}}) == ""


class TestReport:
    def test_report_sections(self):
        obs = instrumented_run()
        text = render_report(obs)
        assert "counters" in text
        assert "enumerator.DPccp.ccp_emitted" in text
        assert "timings" in text
        assert "span tree" in text
        assert "optimize:DPccp" in text

    def test_report_without_spans(self):
        obs = instrumented_run()
        assert "span tree" not in render_report(obs, include_spans=False)

    def test_empty_report(self):
        assert "no observations" in render_report(Instrumentation())
