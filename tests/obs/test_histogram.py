"""Exact-value pins for the ceil-based nearest-rank percentile.

These exist to hold the line on the banker's-rounding bug: ``round()``
resolved mid-window ranks to the *lower* neighbor on half ranks — and
did so parity-dependently — which understated tail latencies on even
sample windows. The contract is now ``ceil``: ties resolve upward.
"""

from __future__ import annotations

import pytest

from repro.obs.histogram import Histogram, HistogramRegistry, _percentile


class TestPercentileExactValues:
    def test_p50_of_two_samples_resolves_upward(self):
        assert _percentile([1.0, 2.0], 0.50) == 2.0

    def test_p50_of_three_samples_is_the_median(self):
        assert _percentile([1.0, 2.0, 3.0], 0.50) == 2.0

    def test_p50_of_four_samples_resolves_upward(self):
        # round(0.5 * 3) == 2 under banker's rounding too, but
        # round(0.5 * 5) == 2 (down!) — pin a window of each parity.
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 3.0

    def test_p50_of_six_samples_resolves_upward(self):
        # The regression case: round(2.5) == 2 picked sample 3.0.
        assert _percentile([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 0.50) == 4.0

    def test_p95_and_p99_of_one_to_one_hundred(self):
        ordered = [float(value) for value in range(1, 101)]
        # rank = ceil(fraction * 99): 95 → sample 96, 99 → sample 100.
        assert _percentile(ordered, 0.95) == 96.0
        assert _percentile(ordered, 0.99) == 100.0
        assert _percentile(ordered, 1.0) == 100.0

    def test_single_sample_is_every_percentile(self):
        for fraction in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert _percentile([7.0], fraction) == 7.0

    def test_empty_list_is_zero(self):
        assert _percentile([], 0.5) == 0.0

    def test_p0_is_the_minimum(self):
        assert _percentile([1.0, 2.0, 3.0], 0.0) == 1.0


class TestHistogramSummary:
    def test_summary_uses_ceil_percentiles(self):
        histogram = Histogram()
        histogram.observe(0.001)
        histogram.observe(0.002)
        summary = histogram.summary()
        assert summary["count"] == 2
        assert summary["p50_ms"] == pytest.approx(2.0)
        assert summary["min_ms"] == pytest.approx(1.0)
        assert summary["max_ms"] == pytest.approx(2.0)

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0}

    def test_registry_snapshot_carries_percentiles(self):
        registry = HistogramRegistry()
        for value in (0.001, 0.002, 0.003):
            registry.observe("latency", value)
        snapshot = registry.snapshot()
        assert snapshot["latency"]["p50_ms"] == pytest.approx(2.0)
