"""Concurrency guarantees: no lost increments, spans consistent with metrics.

The 8-thread hammer covers the primitive instruments; the service-level
regression pins the property the obs layer exists for — the service's
aggregate counters are exactly the sum of its per-request span data, so
dashboards built on either view can never disagree.
"""

from __future__ import annotations

import random
import threading

from repro.graph.generators import graph_for_topology
from repro.catalog.synthetic import random_catalog
from repro.obs import CounterRegistry, Histogram, Instrumentation
from repro.service import PlanRequest, PlanService

THREADS = 8
INCREMENTS = 10_000


def hammer(worker, threads: int = THREADS):
    """Run ``worker(thread_index)`` on N threads, joining all."""
    pool = [
        threading.Thread(target=worker, args=(index,)) for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestCounterHammer:
    def test_no_lost_increments_on_one_counter(self):
        registry = CounterRegistry()

        def worker(_index):
            counter = registry.counter("shared")
            for _ in range(INCREMENTS):
                counter.increment()

        hammer(worker)
        assert registry.value("shared") == THREADS * INCREMENTS

    def test_no_lost_increments_across_contended_names(self):
        """Threads race on registry creation *and* on increments."""
        registry = CounterRegistry()

        def worker(index):
            for iteration in range(INCREMENTS):
                registry.increment(f"name-{(index + iteration) % 4}")

        hammer(worker)
        total = sum(registry.snapshot().values())
        assert total == THREADS * INCREMENTS
        assert len(registry) == 4


class TestHistogramHammer:
    def test_count_and_sum_are_exact(self):
        histogram = Histogram(window=256)

        def worker(_index):
            for _ in range(INCREMENTS // 10):
                histogram.observe(0.001)

        hammer(worker)
        expected = THREADS * (INCREMENTS // 10)
        assert histogram.count == expected
        summary = histogram.summary()
        assert summary["count"] == expected
        # Every sample is identical, so all percentiles must agree even
        # under interleaved writes.
        assert summary["p50_ms"] == summary["p99_ms"] == 1.0

    def test_snapshot_during_writes_is_consistent(self):
        histogram = Histogram()
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            while not stop.is_set():
                histogram.observe(0.002)

        def reader():
            for _ in range(200):
                summary = histogram.summary()
                if summary["count"] and summary["min_ms"] != 2.0:
                    failures.append(str(summary))

        writers = [threading.Thread(target=writer) for _ in range(4)]
        for thread in writers:
            thread.start()
        reader()
        stop.set()
        for thread in writers:
            thread.join()
        assert not failures


class TestServiceSpansMatchMetrics:
    """PlanService aggregate metrics == the sum of per-request spans."""

    def test_counters_equal_span_sums(self):
        rng = random.Random(5)
        obs = Instrumentation(span_capacity=4096)
        requests = []
        for index in range(40):
            seed = rng.randrange(6)  # small pool => repeats => cache hits
            query_rng = random.Random(seed)
            graph = graph_for_topology("star", 7, rng=query_rng)
            requests.append(
                PlanRequest(graph=graph, catalog=random_catalog(7, query_rng))
            )
        with PlanService(
            algorithm="dpccp", workers=4, instrumentation=obs
        ) as service:
            responses = service.plan_batch(requests, concurrency=8)
            snapshot = service.snapshot()

        assert len(responses) == len(requests)
        request_spans = obs.tracer.roots("service.request")
        outcomes = [span.attributes["outcome"] for span in request_spans]

        counters = snapshot["counters"]
        assert len(request_spans) == counters["requests"] == len(requests)
        assert outcomes.count("miss") == counters["cache_misses"]
        assert outcomes.count("degraded") == counters.get("degraded", 0) == 0
        assert outcomes.count("hit") == counters["cache_hits"] + counters.get(
            "coalesced", 0
        )
        # The latency histogram and the span tree measure the same
        # population: one observation per request span.
        assert snapshot["histograms"]["plan_latency"]["count"] == len(
            request_spans
        )
        # Span wall times and histogram totals agree on magnitude: each
        # span strictly contains the timed section it mirrors.
        assert all(span.wall_seconds >= 0.0 for span in request_spans)

    def test_degraded_requests_are_spanned_too(self):
        obs = Instrumentation(span_capacity=1024)
        rng = random.Random(9)
        graph = graph_for_topology("clique", 9, rng=rng)
        catalog = random_catalog(9, rng)
        with PlanService(
            algorithm="dpsub", workers=1, instrumentation=obs
        ) as service:
            response = service.plan(
                graph, catalog, deadline_seconds=0.0
            )  # expires immediately => degrade
        assert response.degraded
        spans = obs.tracer.roots("service.request")
        assert [span.attributes["outcome"] for span in spans] == ["degraded"]
        degrade_children = [
            child
            for child in spans[0].walk()
            if child.name == "service.degrade"
        ]
        assert len(degrade_children) == 1
        assert service.metrics.counter("degraded").value == 1
