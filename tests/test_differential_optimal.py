"""Differential test battery: every exact enumerator agrees, always.

Property-based (hypothesis) differential testing over random
chain/cycle/star/clique/random-connected instances up to n=10: DPsize,
DPsub, DPccp, DPconv (every sweep backend), DPhyp, top-down
branch-and-bound and the exhaustive oracle must return *identical*
optimal costs, and the polynomial heuristics (GOO, QuickPick) must
never beat the optimum. This is the battery the obs layer's counters
are validated against — an enumeration bug (missed csg-cmp-pair, wrong
DP order, broken pruning bound, a lattice-sweep addressing slip)
surfaces here as a cost disagreement before it can corrupt any counter
analysis.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.synthetic import random_catalog
from repro.core import (
    DPccp,
    DPconv,
    DPsize,
    DPsub,
    ExhaustiveOptimizer,
    GreedyOperatorOrdering,
    QuickPick,
    TopDownBB,
)
from repro.core.dpconv import _numpy_module
from repro.graph.generators import (
    graph_for_topology,
    random_connected_graph,
)
from repro.hyper.dphyp import DPhyp
from repro.hyper.hypergraph import Hypergraph
from repro.plans.visitors import validate_plan

#: The exact algorithms under differential comparison, as
#: (label, factory) pairs — DPconv participates once per sweep backend
#: so the vectorized and stdlib paths are *independently* pinned to the
#: oracle. The exhaustive oracle is deliberately an independent
#: implementation (top-down generate-and-test), so agreement is
#: meaningful evidence.
EXACT_ALGORITHMS: list[tuple[str, "type | object"]] = [
    ("DPsize", DPsize),
    ("DPsub", DPsub),
    ("DPccp", DPccp),
    ("TopDownBB", TopDownBB),
    ("exhaustive", ExhaustiveOptimizer),
    ("DPconv[python]", lambda: DPconv(backend="python")),
]
if _numpy_module() is not None:
    EXACT_ALGORITHMS.append(
        ("DPconv[numpy]", lambda: DPconv(backend="numpy", vector_min_relations=2))
    )

MAX_RELATIONS = 10

TOPOLOGIES = ("chain", "cycle", "star", "clique", "random")


def build_instance(topology: str, n: int, seed: int):
    """One deterministic (graph, catalog) instance."""
    rng = random.Random(seed)
    if topology == "random":
        graph = random_connected_graph(n, rng, rng.random() * 0.7)
    else:
        if topology == "cycle" and n < 3:
            topology = "chain"
        graph = graph_for_topology(topology, n, rng=rng)
    catalog = random_catalog(n, rng)
    return graph, catalog


def optimal_costs(graph, catalog) -> dict[str, float]:
    """Plan cost per exact algorithm, with every plan validated."""
    costs: dict[str, float] = {}
    for label, factory in EXACT_ALGORITHMS:
        result = factory().optimize(graph, catalog=catalog)
        validate_plan(result.plan, graph)
        costs[label] = result.cost
    hyper = Hypergraph.from_query_graph(graph)
    costs["DPhyp"] = DPhyp().optimize(hyper, catalog=catalog).cost
    return costs


instances = st.tuples(
    st.sampled_from(TOPOLOGIES),
    st.integers(min_value=2, max_value=MAX_RELATIONS),
    st.integers(min_value=0, max_value=2**31 - 1),
)


class TestExactAgreement:
    """All six exact enumerators return the same optimal cost."""

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=instances)
    def test_property_random_instances(self, instance):
        topology, n, seed = instance
        graph, catalog = build_instance(topology, n, seed)
        costs = optimal_costs(graph, catalog)
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference), (
                f"{name} disagrees with the exhaustive oracle on "
                f"{topology} n={n} seed={seed}: {cost} != {reference}"
            )

    @pytest.mark.parametrize("topology", ["chain", "cycle", "star", "clique"])
    @pytest.mark.parametrize("n", [2, 4, 7, 10])
    def test_paper_topologies_deterministic(self, topology, n):
        """A fixed grid over the paper's four shapes up to n=10."""
        graph, catalog = build_instance(topology, n, seed=17 * n)
        costs = optimal_costs(graph, catalog)
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            assert cost == pytest.approx(reference), name


class TestHeuristicsNeverBeatOptimal:
    """GOO and QuickPick are valid plans costing >= the DP optimum."""

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=instances)
    def test_goo_and_quickpick_bounded_below(self, instance):
        topology, n, seed = instance
        graph, catalog = build_instance(topology, n, seed)
        optimum = DPccp().optimize(graph, catalog=catalog).cost
        for heuristic_class in (GreedyOperatorOrdering, QuickPick):
            result = heuristic_class().optimize(graph, catalog=catalog)
            validate_plan(result.plan, graph)
            # >= up to float noise: equality happens all the time on
            # small instances, a genuinely cheaper plan never may.
            assert result.cost >= optimum * (1 - 1e-9), heuristic_class.name
