"""Unit tests for the randomized self-check harness."""

from __future__ import annotations

from repro.cli import main
from repro.selfcheck import SelfCheckReport, run_selfcheck


class TestRunSelfcheck:
    def test_passes_on_healthy_build(self):
        report = run_selfcheck(instances=6, seed=123, max_relations=6)
        assert report.ok, report.summary()
        assert report.instances == 6

    def test_deterministic_with_seed(self):
        one = run_selfcheck(instances=3, seed=9, max_relations=5)
        two = run_selfcheck(instances=3, seed=9, max_relations=5)
        assert one.failures == two.failures

    def test_summary_mentions_count(self):
        report = run_selfcheck(instances=2, seed=1, max_relations=4)
        assert "2 randomized instances" in report.summary()

    def test_failure_summary_format(self):
        report = SelfCheckReport(instances=1, failures=["instance 0: boom"])
        assert not report.ok
        assert "FAILED" in report.summary()
        assert "boom" in report.summary()

    def test_failure_summary_truncates(self):
        report = SelfCheckReport(
            instances=1, failures=[f"failure {i}" for i in range(30)]
        )
        assert "and 10 more" in report.summary()


class TestCli:
    def test_selfcheck_command(self, capsys):
        assert main(
            ["selfcheck", "--instances", "3", "--seed", "4", "--max-relations", "5"]
        ) == 0
        assert "self-check passed" in capsys.readouterr().out
