"""Unit tests for the disk cost model."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog
from repro.cost.disk import DiskCostModel
from repro.graph.querygraph import QueryGraph


def graph2(selectivity: float = 0.01) -> QueryGraph:
    return QueryGraph(2, [(0, 1, selectivity)])


class TestDiskModel:
    def test_leaf_pays_scan(self):
        model = DiskCostModel(graph2(), Catalog.from_cardinalities([100, 10]))
        assert model.leaf(0).cost == 100

    def test_cost_exceeds_children(self):
        model = DiskCostModel(graph2(), Catalog.from_cardinalities([100, 10]))
        joined = model.join(model.leaf(0), model.leaf(1))
        assert joined.cost > model.leaf(0).cost + model.leaf(1).cost

    def test_small_inputs_prefer_nested_loop(self):
        model = DiskCostModel(
            graph2(), Catalog.from_cardinalities([10, 10]), buffer_pages=100
        )
        joined = model.join(model.leaf(0), model.leaf(1))
        # 10 + 10*10/100 = 11 vs hash 60 vs smj ~86.
        assert joined.operator == "NestedLoopJoin"

    def test_large_inputs_prefer_hash(self):
        model = DiskCostModel(
            graph2(),
            Catalog.from_cardinalities([100_000, 100_000]),
            buffer_pages=100,
        )
        joined = model.join(model.leaf(0), model.leaf(1))
        assert joined.operator == "HashJoin"

    def test_asymmetric_in_inputs(self):
        # Nested loop cost depends on which side is outer.
        model = DiskCostModel(
            graph2(), Catalog.from_cardinalities([1000, 10]), buffer_pages=10
        )
        left, right = model.leaf(0), model.leaf(1)
        ab = model.join(left, right)
        ba = model.join(right, left)
        assert ab.cost != ba.cost

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiskCostModel(graph2(), buffer_pages=0)
        with pytest.raises(ValueError):
            DiskCostModel(graph2(), hash_factor=0.0)

    def test_name(self):
        assert DiskCostModel.name == "disk"
