"""Unit tests for repro.cost.cardinality."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog
from repro.cost.cardinality import CardinalityEstimator
from repro.cost.cout import CoutModel
from repro.errors import CatalogError
from repro.graph.querygraph import QueryGraph


def triangle() -> QueryGraph:
    return QueryGraph(3, [(0, 1, 0.1), (1, 2, 0.01), (0, 2, 0.5)])


class TestEstimator:
    def test_base_cardinality(self):
        estimator = CardinalityEstimator(
            triangle(), Catalog.from_cardinalities([100, 200, 300])
        )
        assert estimator.base_cardinality(2) == 300

    def test_default_catalog_uniform(self):
        estimator = CardinalityEstimator(triangle())
        assert estimator.base_cardinality(0) == estimator.base_cardinality(2)

    def test_catalog_size_mismatch_rejected(self):
        with pytest.raises(CatalogError):
            CardinalityEstimator(triangle(), Catalog.from_cardinalities([1, 2]))

    def test_join_cardinality_single_edge(self):
        graph = triangle()
        catalog = Catalog.from_cardinalities([100, 200, 300])
        model = CoutModel(graph, catalog)
        left = model.leaf(0)
        right = model.leaf(1)
        estimate = model.estimator.join_cardinality(left, right)
        assert estimate == pytest.approx(100 * 200 * 0.1)

    def test_join_cardinality_multiple_crossing_edges(self):
        graph = triangle()
        catalog = Catalog.from_cardinalities([100, 200, 300])
        model = CoutModel(graph, catalog)
        pair = model.join(model.leaf(0), model.leaf(1))
        estimate = model.estimator.join_cardinality(pair, model.leaf(2))
        # Edges (1,2) sel 0.01 and (0,2) sel 0.5 both cross.
        assert estimate == pytest.approx(2000 * 300 * 0.01 * 0.5)

    def test_set_cardinality_order_independent(self):
        graph = triangle()
        catalog = Catalog.from_cardinalities([100, 200, 300])
        model = CoutModel(graph, catalog)
        direct = model.estimator.set_cardinality(0b111)
        via_01 = model.join(model.join(model.leaf(0), model.leaf(1)), model.leaf(2))
        via_12 = model.join(model.leaf(0), model.join(model.leaf(1), model.leaf(2)))
        assert via_01.cardinality == pytest.approx(direct)
        assert via_12.cardinality == pytest.approx(direct)

    def test_cross_product_degenerates_to_product(self):
        graph = QueryGraph(3, [(0, 1, 0.1), (1, 2, 0.1)])
        catalog = Catalog.from_cardinalities([10, 20, 30])
        estimator = CardinalityEstimator(graph, catalog)
        model = CoutModel(graph, catalog)
        estimate = estimator.join_cardinality(model.leaf(0), model.leaf(2))
        assert estimate == pytest.approx(300)

    def test_graph_and_catalog_accessors(self):
        graph = triangle()
        estimator = CardinalityEstimator(graph)
        assert estimator.graph is graph
        assert len(estimator.catalog) == 3
