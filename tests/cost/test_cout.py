"""Unit tests for the C_out cost model."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog
from repro.cost.cout import CoutModel
from repro.graph.querygraph import QueryGraph
from repro.plans.metrics import intermediate_cardinalities


def chain3_model() -> CoutModel:
    graph = QueryGraph(3, [(0, 1, 0.1), (1, 2, 0.2)])
    return CoutModel(graph, Catalog.from_cardinalities([100, 50, 30]))


class TestCout:
    def test_leaf_is_free(self):
        model = chain3_model()
        leaf = model.leaf(0)
        assert leaf.cost == 0.0
        assert leaf.cardinality == 100

    def test_join_cost_is_output_cardinality(self):
        model = chain3_model()
        pair = model.join(model.leaf(0), model.leaf(1))
        assert pair.cardinality == pytest.approx(100 * 50 * 0.1)
        assert pair.cost == pytest.approx(pair.cardinality)

    def test_cost_accumulates(self):
        model = chain3_model()
        pair = model.join(model.leaf(0), model.leaf(1))
        full = model.join(pair, model.leaf(2))
        assert full.cost == pytest.approx(pair.cardinality + full.cardinality)

    def test_cost_equals_sum_of_intermediates(self):
        model = chain3_model()
        full = model.join(model.join(model.leaf(0), model.leaf(1)), model.leaf(2))
        assert full.cost == pytest.approx(sum(intermediate_cardinalities(full)))

    def test_symmetric_in_inputs(self):
        model = chain3_model()
        a, b = model.leaf(0), model.leaf(1)
        assert model.join(a, b).cost == model.join(b, a).cost

    def test_operator_label(self):
        model = chain3_model()
        assert model.join(model.leaf(0), model.leaf(1)).operator == "Join"
        assert model.leaf(0).operator == "Scan"

    def test_name(self):
        assert CoutModel.name == "Cout"
