"""Unit tests for JSON serialization round trips."""

from __future__ import annotations

import json
import random

import pytest

from repro.catalog.synthetic import random_catalog
from repro.core import DPccp
from repro.graph.generators import random_connected_graph, star_graph
from repro.io import (
    SerializationError,
    catalog_from_dict,
    catalog_to_dict,
    graph_from_dict,
    graph_to_dict,
    plan_from_dict,
    plan_to_dict,
    result_to_dict,
)
from repro.plans.visitors import render_inline


class TestGraphRoundTrip:
    def test_round_trip_equality(self, rng):
        for _ in range(8):
            graph = random_connected_graph(rng.randint(1, 8), rng, rng.random())
            assert graph_from_dict(graph_to_dict(graph)) == graph

    def test_json_safe(self):
        graph = star_graph(5, selectivity=0.25)
        text = json.dumps(graph_to_dict(graph))
        assert graph_from_dict(json.loads(text)) == graph

    def test_predicates_preserved(self):
        from repro.graph.querygraph import JoinEdge, QueryGraph

        graph = QueryGraph(2, [JoinEdge(0, 1, 0.5, "a = b")])
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.edges[0].predicate == "a = b"

    def test_wrong_kind_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"kind": "catalog", "relations": []})

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"kind": "query_graph", "edges": [{}]})


class TestCatalogRoundTrip:
    def test_round_trip(self, rng):
        catalog = random_catalog(6, rng)
        restored = catalog_from_dict(catalog_to_dict(catalog))
        assert restored.cardinalities() == catalog.cardinalities()
        assert [entry.name for entry in restored] == [
            entry.name for entry in catalog
        ]

    def test_json_safe(self, rng):
        catalog = random_catalog(3, rng)
        text = json.dumps(catalog_to_dict(catalog))
        assert catalog_from_dict(json.loads(text)).cardinalities() == (
            catalog.cardinalities()
        )

    def test_wrong_kind_rejected(self):
        with pytest.raises(SerializationError):
            catalog_from_dict({"kind": "nope"})


class TestPlanRoundTrip:
    def test_round_trip_structure_and_numbers(self, rng):
        for _ in range(6):
            n = rng.randint(2, 7)
            graph = random_connected_graph(n, rng, rng.random() * 0.5)
            result = DPccp().optimize(graph, catalog=random_catalog(n, rng))
            restored = plan_from_dict(plan_to_dict(result.plan))
            assert render_inline(restored) == render_inline(result.plan)
            assert restored.cost == result.plan.cost
            assert restored.cardinality == result.plan.cardinality

    def test_json_safe(self):
        result = DPccp().optimize(star_graph(4, selectivity=0.1))
        text = json.dumps(plan_to_dict(result.plan))
        restored = plan_from_dict(json.loads(text))
        assert restored.relations == result.plan.relations

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            plan_from_dict({"kind": "scan"})

    def test_malformed_join_rejected(self):
        with pytest.raises(SerializationError):
            plan_from_dict({"kind": "join", "cost": 1.0})


class TestResultArchive:
    def test_result_to_dict_complete(self):
        rng = random.Random(4)
        graph = random_connected_graph(5, rng, 0.4)
        result = DPccp().optimize(graph, catalog=random_catalog(5, rng))
        archive = result_to_dict(result)
        assert archive["algorithm"] == "DPccp"
        assert archive["counters"]["inner_counter"] == (
            result.counters.inner_counter
        )
        assert json.dumps(archive)  # JSON-safe end to end
        assert plan_from_dict(archive["plan"]).cost == pytest.approx(result.cost)
