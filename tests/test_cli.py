"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.topology == "chain"
        assert args.algorithm == "dpccp"
        assert args.relations == 8

    def test_bench_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])


class TestCommands:
    def test_optimize(self, capsys):
        assert main(["optimize", "--topology", "star", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "algorithm : DPccp" in out
        assert "Scan" in out

    def test_optimize_each_algorithm(self, capsys):
        for algorithm in ("dpsize", "dpsub", "dpccp", "goo", "adaptive"):
            assert main(
                ["optimize", "-n", "5", "--algorithm", algorithm]
            ) == 0
        assert "cost" in capsys.readouterr().out

    def test_count_matches(self, capsys):
        assert main(["count", "--topology", "chain", "-n", "7"]) == 0
        out = capsys.readouterr().out
        assert "all formulas match" in out

    def test_table(self, capsys):
        assert main(["table", "--figure", "3", "--sizes", "2", "5"]) == 0
        out = capsys.readouterr().out
        assert "12/12" not in out  # only 8 cells for two sizes
        assert "8/8 cells match" in out

    def test_bench_small(self, capsys):
        assert main(
            ["bench", "--figure", "8", "--budget", "2000", "--min-seconds", "0.005"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "budget" in out
        assert "log scale" in out  # ASCII chart included

    def test_bench_figure12(self, capsys):
        assert main(
            ["bench", "--figure", "12", "--budget", "300", "--min-seconds", "0.005"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "paper C++" in out

    def test_space(self, capsys):
        assert main(["space", "--topology", "clique", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "csg-cmp-pairs (unordered)     : 90" in out
        assert "join trees (ordered)          : 1,680" in out

    def test_parse(self, capsys):
        query = (
            "SELECT * FROM a (100), b (200), c (50) "
            "WHERE a.x = b.y [0.01] AND b.z = c.w [0.1]"
        )
        assert main(["parse", query]) == 0
        out = capsys.readouterr().out
        assert "algorithm : DPccp" in out
        assert "Scan a" in out

    def test_parse_dot_output(self, capsys):
        query = "SELECT * FROM a (10), b (20) WHERE a.x = b.y [0.5]"
        assert main(["parse", query, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph plan {")

    def test_parse_bad_query_reports_cleanly(self, capsys):
        assert main(["parse", "DELETE FROM a"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_error_path_reports_cleanly(self, capsys):
        # IKKBZ rejects cyclic graphs -> ReproError -> exit code 2.
        assert main(
            ["optimize", "--topology", "cycle", "-n", "5", "--algorithm", "ikkbz"]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestPlanCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.topology == "clique"
        assert args.relations == 10
        assert args.jobs is None

    def test_jobs_one_runs_in_process(self, capsys):
        assert main(
            ["plan", "--topology", "star", "-n", "7", "--jobs", "1", "--verify"]
        ) == 0
        out = capsys.readouterr().out
        assert "(jobs=1)" in out
        assert "pool spawned: False" in out
        assert "verify    : matches sequential DPsize" in out

    def test_jobs_two_forced_dispatch(self, capsys):
        assert main(
            [
                "plan",
                "--topology", "chain",
                "-n", "6",
                "--jobs", "2",
                "--min-shard-pairs", "1",
                "--verify",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "pool spawned: True" in out
        assert "verify    : matches sequential DPsize" in out

    def test_any_registry_algorithm_accepted(self, capsys):
        # Regression: plan used to accept only dpsize/dpconv while every
        # other subcommand routed through the full registry.
        assert main(
            ["plan", "--topology", "chain", "-n", "30",
             "--algorithm", "lindp"]
        ) == 0
        out = capsys.readouterr().out
        assert "algorithm : LinDP" in out
        assert "linearization" in out

    def test_exact_engine_verifies(self, capsys):
        assert main(
            ["plan", "--topology", "star", "-n", "7",
             "--algorithm", "dpccp", "--verify"]
        ) == 0
        assert "verify    : matches" in capsys.readouterr().out

    def test_pool_flags_reject_non_dpsize(self, capsys):
        assert main(
            ["plan", "-n", "6", "--algorithm", "lindp", "--jobs", "2"]
        ) == 2
        err = capsys.readouterr().err
        assert "--jobs" in err
        assert "dpsize" in err

    def test_backend_rejects_non_dpconv(self, capsys):
        assert main(
            ["plan", "-n", "6", "--algorithm", "dpccp",
             "--backend", "python"]
        ) == 2
        assert "--backend" in capsys.readouterr().err

    def test_verify_rejects_heuristics(self, capsys):
        assert main(
            ["plan", "-n", "6", "--algorithm", "goo", "--verify"]
        ) == 2
        err = capsys.readouterr().err
        assert "--verify" in err
        assert "goo" in err


class TestOptimizeRouting:
    def test_adaptive_prints_routing_decision(self, capsys):
        assert main(
            ["optimize", "--topology", "chain", "-n", "30",
             "--algorithm", "adaptive"]
        ) == 0
        out = capsys.readouterr().out
        assert "routing   : chain query, n=30 -> rung 'lindp'" in out

    def test_non_adaptive_prints_no_routing(self, capsys):
        assert main(
            ["optimize", "--topology", "chain", "-n", "6",
             "--algorithm", "dpccp"]
        ) == 0
        assert "routing" not in capsys.readouterr().out


class TestServiceCommands:
    def test_serve_batch_defaults(self):
        args = build_parser().parse_args(["serve-batch"])
        assert args.topology == "star"
        assert args.requests == 200
        assert args.repeat_ratio == 0.7
        assert args.fallback == "ladder"

    def test_fallback_choices(self):
        args = build_parser().parse_args(["serve-batch", "--fallback", "goo"])
        assert args.fallback == "goo"
        assert build_parser().parse_args(["serve"]).fallback == "ladder"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-batch", "--fallback", "ikkbz"])
        assert args.jobs is None
        assert args.concurrency is None

    def test_serve_batch_with_process_pool(self, capsys):
        assert main(
            [
                "serve-batch",
                "--topology", "star",
                "-n", "7",
                "--requests", "12",
                "--jobs", "2",
                "--workers", "2",
                "--seed", "5",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "planned 12 requests" in out
        assert "cache hit-rate:" in out

    def test_serve_batch(self, capsys):
        assert main(
            [
                "serve-batch",
                "--topology",
                "star",
                "-n",
                "8",
                "--requests",
                "60",
                "--repeat-ratio",
                "0.7",
                "--seed",
                "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "planned 60 requests" in out
        assert "cache hit-rate:" in out
        assert "p99_ms" in out

    def test_serve_batch_tiny_deadline_degrades_without_error(self, capsys):
        assert main(
            [
                "serve-batch",
                "--topology",
                "star",
                "-n",
                "13",
                "--requests",
                "6",
                "--repeat-ratio",
                "0.0",
                "--deadline-ms",
                "1",
                "--seed",
                "1",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "degraded" in out

    def test_serve_batch_metrics_out_feeds_stats(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        assert main(
            [
                "serve-batch",
                "-n",
                "6",
                "--requests",
                "20",
                "--metrics-out",
                str(metrics_file),
            ]
        ) == 0
        assert metrics_file.exists()
        capsys.readouterr()
        assert main(["stats", "--metrics", str(metrics_file)]) == 0
        out = capsys.readouterr().out
        assert "plan cache" in out
        assert "hit_rate" in out

    def test_serve_batch_workload_file(self, tmp_path, capsys):
        import json

        workload = tmp_path / "workload.json"
        workload.write_text(
            json.dumps(
                [
                    {"topology": "chain", "n": 5, "seed": 1, "count": 3},
                    {"topology": "star", "n": 6, "seed": 2},
                ]
            )
        )
        assert main(["serve-batch", "--workload", str(workload)]) == 0
        assert "planned 4 requests" in capsys.readouterr().out

    def test_stats_missing_metrics_file_reports_cleanly(self, capsys):
        assert main(["stats", "--metrics", "/nonexistent/metrics.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_batch_malformed_workload_reports_cleanly(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["serve-batch", "--workload", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_demo_json(self, capsys):
        import json

        assert main(["stats", "--demo-requests", "12", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["requests"] == 12
        assert "cache" in snapshot


class TestServeCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.algorithm == "adaptive"
        assert args.cache_shards == 8
        assert args.k_best == 2
        assert args.max_inflight == 64
        assert args.persist is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--cache-shards", "4",
                "--k-best", "3",
                "--tenant-rate", "10",
                "--persist", "/tmp/snap.json",
            ]
        )
        assert args.port == 0
        assert args.cache_shards == 4
        assert args.k_best == 3
        assert args.tenant_rate == 10.0
        assert args.persist == "/tmp/snap.json"

    def test_invalid_configuration_reports_cleanly(self, capsys):
        # Bad service configuration dies on construction — before the
        # command ever binds a socket or blocks on the event loop.
        assert main(["serve", "--cache-shards", "0"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["serve", "--k-best", "999"]) == 2
        assert "error:" in capsys.readouterr().err
