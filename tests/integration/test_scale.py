"""Scale and robustness tests: beyond 64 relations, deep trees, extremes.

Python ints are unbounded, so unlike C++ bitset implementations the
library has no 64-relation ceiling; these tests pin that, plus numeric
robustness at extreme cardinalities/selectivities.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.synthetic import random_catalog
from repro.core import DPccp, GreedyOperatorOrdering, IKKBZ, IterativeDP
from repro.cost.cout import CoutModel
from repro.graph.generators import (
    chain_graph,
    cycle_graph,
    random_tree_graph,
    star_graph,
)
from repro.plans.metrics import depth
from repro.plans.visitors import iter_leaves, validate_plan


class TestBeyond64Relations:
    def test_dpccp_chain_100(self):
        """Chains are easy for DPccp at any size: #ccp(100) ≈ 167k."""
        graph = chain_graph(100, selectivity=0.1)
        result = DPccp().optimize(graph)
        validate_plan(result.plan, graph)
        assert result.plan.size == 100
        assert result.counters.inner_counter == (100**3 - 100) // 6

    def test_dpccp_cycle_48(self):
        graph = cycle_graph(48, selectivity=0.1)
        result = DPccp().optimize(graph)
        validate_plan(result.plan, graph)

    def test_ikkbz_tree_200(self):
        """Polynomial IKKBZ handles very wide trees."""
        rng = random.Random(1)
        graph = random_tree_graph(200, rng)
        result = IKKBZ().optimize(graph, catalog=random_catalog(200, rng))
        assert result.plan.size == 200

    def test_greedy_star_150(self):
        graph = star_graph(150, selectivity=0.01)
        result = GreedyOperatorOrdering().optimize(graph)
        assert result.plan.size == 150

    def test_idp_chain_80(self):
        graph = chain_graph(80, selectivity=0.1)
        result = IterativeDP(k=4).optimize(graph)
        validate_plan(result.plan, graph)
        leaves = sorted(leaf.relation_index for leaf in iter_leaves(result.plan))
        assert leaves == list(range(80))


class TestDeepPlans:
    def test_left_deep_chain_is_deep(self):
        """A 100-relation plan tree traverses without recursion limits."""
        graph = chain_graph(100, selectivity=0.5)
        plan = DPccp().optimize(graph).plan
        assert depth(plan) >= 7  # at least log-depth; typically larger
        assert len(list(iter_leaves(plan))) == 100


class TestNumericExtremes:
    def test_huge_cardinalities(self):
        graph = chain_graph(5, selectivity=1e-9)
        catalog = Catalog.from_cardinalities([1e12] * 5)
        result = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog))
        assert result.cost > 0
        assert result.cost != float("inf")

    def test_tiny_selectivities(self):
        graph = chain_graph(6, selectivity=1e-300)
        result = DPccp().optimize(graph)
        validate_plan(result.plan, graph)
        assert result.cost >= 0.0

    def test_single_row_relations(self):
        graph = star_graph(6, selectivity=1.0)
        catalog = Catalog.from_cardinalities([1.0] * 6)
        result = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog))
        assert result.cost == pytest.approx(5.0)  # five joins of 1 row
