"""Integration tests: the public API end to end, as a user would drive it."""

from __future__ import annotations

import pytest

import repro
from repro import (
    AdaptiveOptimizer,
    CoutModel,
    DiskCostModel,
    DPccp,
    DPsize,
    DPsub,
    GreedyOperatorOrdering,
    IKKBZ,
    QueryGraphBuilder,
    optimize,
    render_indented,
    validate_plan,
    zipfian_catalog,
)
from repro.graph import star_graph
from repro.plans.metrics import PlanShape, classify_plan_shape


def tpch_like():
    """A TPC-H-flavored chain: region-nation-customer-orders-lineitem."""
    return (
        QueryGraphBuilder()
        .relation("region", cardinality=5)
        .relation("nation", cardinality=25)
        .relation("customer", cardinality=150_000)
        .relation("orders", cardinality=1_500_000)
        .relation("lineitem", cardinality=6_000_000)
        .foreign_key("nation", "region")
        .foreign_key("customer", "nation")
        .foreign_key("orders", "customer")
        .foreign_key("lineitem", "orders")
        .build()
    )


class TestBuilderToPlan:
    def test_full_pipeline(self):
        graph, catalog = tpch_like()
        result = DPccp().optimize(graph, catalog=catalog)
        validate_plan(result.plan, graph)
        explain = render_indented(result.plan)
        assert "lineitem" in explain
        # Foreign-key chains keep intermediate sizes at the referencing
        # side's cardinality; the optimum must not exceed joining
        # everything at lineitem scale.
        assert result.cost <= 6_000_000 * 4

    def test_named_relations_survive(self):
        graph, catalog = tpch_like()
        plan = DPccp().optimize(graph, catalog=catalog).plan
        names = {leaf.name for leaf in repro.plans.iter_leaves(plan)}
        assert names == {"region", "nation", "customer", "orders", "lineitem"}


class TestWarehouseScenario:
    def test_star_schema_all_algorithms_agree(self):
        graph = star_graph(7, selectivity=0.001)
        catalog = zipfian_catalog(7, base_cardinality=5_000_000.0)
        costs = {
            name: optimize(graph, catalog=catalog, algorithm=name).cost
            for name in ("dpsize", "dpsub", "dpccp", "exhaustive")
        }
        reference = costs["exhaustive"]
        for name, cost in costs.items():
            # Equal up to float associativity: different enumeration
            # orders multiply the same selectivities in different order.
            assert cost == pytest.approx(reference, rel=1e-9), name

    def test_greedy_and_ikkbz_bounded_below_by_optimal(self):
        graph = star_graph(7, selectivity=0.001)
        catalog = zipfian_catalog(7, base_cardinality=5_000_000.0)
        best = optimize(graph, catalog=catalog).cost
        greedy = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
        left_deep = IKKBZ().optimize(graph, catalog=catalog)
        assert greedy.cost >= best - 1e-6
        assert left_deep.cost >= best - 1e-6

    def test_adaptive_on_the_warehouse(self):
        graph = star_graph(7, selectivity=0.001)
        result = AdaptiveOptimizer().optimize(
            graph, catalog=zipfian_catalog(7)
        )
        assert result.algorithm.endswith("DPccp")


class TestCostModelSwap:
    def test_same_enumeration_different_plans_possible(self):
        graph, catalog = tpch_like()
        cout = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog))
        disk = DPccp().optimize(graph, cost_model=DiskCostModel(graph, catalog))
        validate_plan(cout.plan, graph)
        validate_plan(disk.plan, graph)
        # Enumeration effort is cost-model independent.
        assert cout.counters.inner_counter == disk.counters.inner_counter

    def test_bushy_plans_actually_happen(self):
        """The search space is bushy: some instance must use it.

        A chain of relations with tiny middle join lets a bushy plan
        beat every left-deep one.
        """
        from repro.graph.querygraph import QueryGraph
        from repro.catalog.catalog import Catalog

        graph = QueryGraph(
            4, [(0, 1, 1e-6), (1, 2, 0.9), (2, 3, 1e-6)]
        )
        catalog = Catalog.from_cardinalities([1e6, 1e6, 1e6, 1e6])
        plan = DPccp().optimize(
            graph, cost_model=CoutModel(graph, catalog)
        ).plan
        assert classify_plan_shape(plan) == PlanShape.BUSHY


class TestVersioning:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
