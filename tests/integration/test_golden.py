"""Golden regression tests: pinned plans for fixed inputs.

These freeze observable behavior — exact plan text, costs and counters
for specific seeded instances — so that any future change to
enumeration order, tie-breaking or estimation arithmetic that alters
results is caught deliberately rather than silently.
"""

from __future__ import annotations

import pytest

from repro import (
    DPccp,
    DPsize,
    DPsub,
    QueryGraphBuilder,
    render_inline,
)
from repro.catalog.catalog import Catalog
from repro.graph.generators import chain_graph, star_graph
from repro.cost.cout import CoutModel


def warehouse():
    return (
        QueryGraphBuilder()
        .relation("fact", cardinality=1_000_000)
        .relation("dim_small", cardinality=10)
        .relation("dim_mid", cardinality=1_000)
        .relation("dim_big", cardinality=100_000)
        .foreign_key("fact", "dim_small")
        .foreign_key("fact", "dim_mid")
        .foreign_key("fact", "dim_big")
        .build()
    )


class TestGoldenPlans:
    def test_warehouse_plan_text(self):
        graph, catalog = warehouse()
        plan = DPccp().optimize(graph, catalog=catalog).plan
        # Star + FK joins: intermediates all equal |fact|; ties keep
        # the incumbent, so the emission order pins the shape.
        assert render_inline(plan) == (
            "(((fact ⨝ dim_small) ⨝ dim_mid) ⨝ dim_big)"
        )

    def test_warehouse_cost(self):
        graph, catalog = warehouse()
        result = DPccp().optimize(graph, catalog=catalog)
        assert result.cost == pytest.approx(3_000_000.0)

    def test_chain_counters_frozen(self):
        graph = chain_graph(9)
        assert DPsize().optimize(graph).counters.inner_counter == 750
        assert DPsub().optimize(graph).counters.inner_counter == 1_936
        assert DPccp().optimize(graph).counters.inner_counter == 120

    def test_star_counters_frozen(self):
        graph = star_graph(9)
        assert DPsize().optimize(graph).counters.inner_counter == 15_188
        assert DPsub().optimize(graph).counters.inner_counter == 12_610
        assert DPccp().optimize(graph).counters.inner_counter == 1_024

    def test_skewed_chain_prefers_bushy(self):
        """Chain of growing relations: the optimum is genuinely bushy.

        C_out: 200 (R0⨝R1) + 600 (⨝R2) + 2000 (R3⨝R4) + 12000 (root)
        = 14800, beating the best left-deep plan's 15200.
        """
        graph = chain_graph(5, selectivity=0.01)
        catalog = Catalog.from_cardinalities([100, 200, 300, 400, 500])
        result = DPccp().optimize(
            graph, cost_model=CoutModel(graph, catalog)
        )
        assert render_inline(result.plan) == "(((R0 ⨝ R1) ⨝ R2) ⨝ (R3 ⨝ R4))"
        assert result.cost == pytest.approx(14_800.0)
