#!/usr/bin/env python3
"""Walk through EnumerateCsg / EnumerateCmp on the paper's example graph.

Reconstructs the paper's Figure 6 query graph and prints:

1. the connected-subset emission order of ``EnumerateCsg`` — the
   paper's Figure 7 call table,
2. the complement enumeration for ``S1 = {R1}`` — the worked example of
   §3.3,
3. the first csg-cmp-pairs of the combined stream that drives DPccp —
   the paper's Figure 5 idea.

Run with::

    python examples/enumeration_walkthrough.py
"""

from __future__ import annotations

from repro import bitset
from repro.graph.querygraph import QueryGraph
from repro.graph.subgraphs import (
    enumerate_cmp,
    enumerate_csg,
    enumerate_csg_cmp_pairs,
)


def figure6_graph() -> QueryGraph:
    """Paper Figure 6: BFS-numbered 5-node graph.

    Edges (reconstructed from the Figure 7 table): R0-R1, R0-R2,
    R0-R3, R1-R4, R2-R3, R2-R4, R3-R4.
    """
    return QueryGraph(
        5, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
    )


def names(mask: int) -> str:
    return "{" + ", ".join(f"R{i}" for i in bitset.iter_bits(mask)) + "}"


def main() -> None:
    graph = figure6_graph()
    print("paper Figure 6 graph:", graph)
    print("edges:", ", ".join(f"R{e.left}-R{e.right}" for e in graph.edges))
    print()

    print("-- EnumerateCsg emission order (paper Figure 7) -----------------")
    for position, subset in enumerate(enumerate_csg(graph), start=1):
        print(f"{position:>3}. {names(subset)}")
    print()

    s1 = bitset.bit(1)
    print(f"-- EnumerateCmp(S1 = {names(s1)}) (paper §3.3 example) ----------")
    for complement in enumerate_cmp(graph, s1):
        print(f"   csg-cmp-pair ({names(s1)}, {names(complement)})")
    print()

    print("-- first 12 csg-cmp-pairs of the DPccp stream -------------------")
    for position, (left, right) in enumerate(
        enumerate_csg_cmp_pairs(graph), start=1
    ):
        if position > 12:
            break
        print(f"{position:>3}. ({names(left)}, {names(right)})")
    total = sum(1 for _pair in enumerate_csg_cmp_pairs(graph))
    print(f"\ntotal csg-cmp-pairs (unordered): {total}")
    print("each pair appears exactly once, in an order where every")
    print("component's own sub-pairs were emitted earlier (DP-valid).")


if __name__ == "__main__":
    main()
