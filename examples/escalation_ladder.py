#!/usr/bin/env python3
"""The escalation ladder: large queries without stalls or greedy plans.

Before the ladder existed, a 60-relation chain under a deadline had two
possible fates: stall in exact DP until the deadline burned, then get a
greedy GOO plan. Now `repro.core.adaptive` routes every (graph class,
size) cell to the cheapest rung that is still near-optimal — exact DP,
LinDP, IDP, GOO — and the service degrades *down that ladder* instead
of jumping straight to GOO.

This example:

1. prints the routing decision for a few representative shapes,
2. plans a 60-relation chain through the caching service under a
   100 ms deadline — answered by LinDP, never GOO,
3. burns the deadline on an exact-routed star to show degradation
   stepping down one rung (to LinDP) rather than to the bottom,
4. compares the LinDP plan's cost with GOO's on the same chain.

Run with::

    python examples/escalation_ladder.py
"""

from __future__ import annotations

import random

from repro.catalog.synthetic import random_catalog
from repro.core import GreedyOperatorOrdering
from repro.core.adaptive import AdaptiveOptimizer
from repro.core.lindp import LinDP
from repro.graph.generators import chain_graph, graph_for_topology, star_graph
from repro.service import PlanService


def instance(topology: str, n: int, seed: int = 17):
    rng = random.Random(seed)
    graph = graph_for_topology(topology, n, rng=rng)
    return graph, random_catalog(n, rng)


def show_routing() -> None:
    print("routing decisions (graph class x size -> rung):")
    engine = AdaptiveOptimizer()
    for topology, n in (
        ("chain", 10),
        ("chain", 60),
        ("chain", 300),
        ("star", 60),
        ("clique", 12),
        ("clique", 40),
    ):
        graph, _catalog = instance(topology, n)
        decision = engine.route(graph)
        print(
            f"  {topology:<7} n={n:<4} -> rung '{decision.rung}' "
            f"({decision.algorithm}): {decision.reason}"
        )
    print()


def plan_chain_under_deadline() -> None:
    print("60-relation chain, 100 ms deadline:")
    graph, catalog = instance("chain", 60)
    with PlanService(workers=1) as service:
        response = service.plan(graph, catalog, deadline_seconds=0.100)
    rung = response.ladder_rung or "routed rung, on time"
    print(f"  algorithm : {response.algorithm}")
    print(f"  cost      : {response.cost:.4e}")
    print(f"  degraded  : {response.degraded}  (served by: {rung})")
    print(f"  elapsed   : {response.elapsed_seconds * 1000:.1f} ms")
    assert "GOO" not in response.algorithm, "ladder must beat greedy here"
    print("  -> LinDP answered inside the deadline; GOO was never needed\n")


def burn_deadline_on_exact_rung() -> None:
    print("13-relation star, deadline burnt before planning starts:")
    rng = random.Random(17)
    graph = star_graph(13, rng=rng)
    catalog = random_catalog(13, rng)
    with PlanService(workers=1) as service:
        response = service.plan(graph, catalog, deadline_seconds=1e-9)
    print(f"  algorithm : {response.algorithm}")
    print(f"  degraded  : {response.degraded}  (rung: {response.ladder_rung})")
    print(
        "  -> the routed rung was exact DP, so degradation steps down ONE\n"
        "     rung to LinDP — near-optimal, still no cross products — and\n"
        "     labels the response instead of silently going greedy\n"
    )


def quality_vs_goo() -> None:
    # On easy chains greedy often ties LinDP; dense graphs are where a
    # global interval DP pays off. (GOO's own tree is always one of
    # LinDP's candidate linearizations, so LinDP can never lose.)
    graph, catalog = instance("clique", 14, seed=9)
    lindp = LinDP().optimize(graph, catalog=catalog)
    goo = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
    print("why the lindp rung, not plain greedy (clique-14):")
    print(f"  LinDP : {lindp.cost:.4e}  in {lindp.elapsed_seconds * 1000:.1f} ms")
    print(f"  GOO   : {goo.cost:.4e}  in {goo.elapsed_seconds * 1000:.1f} ms")
    print(f"  GOO pays {goo.cost / lindp.cost:.3f}x LinDP's cost")


def main() -> None:
    show_routing()
    plan_chain_under_deadline()
    burn_deadline_on_exact_rung()
    quality_vs_goo()


if __name__ == "__main__":
    main()
