#!/usr/bin/env python3
"""HTTP plan server: caching, quotas, 429s, k-best degraded plans.

Run with::

    PYTHONPATH=src python examples/server_demo.py

Boots a :class:`repro.server.PlanServer` on an ephemeral loopback port
and talks to it with stdlib ``http.client`` — the same wire path a real
deployment uses — to show the four things the server adds on top of
:class:`repro.service.PlanService`:

1. *A JSON planning API* — ``POST /plan`` takes a serialized query
   graph, ``POST /plan_sql`` takes SQL text; both answer the full
   ``PlanResponse`` (plan tree, cost, cache/degradation flags).
2. *Caching across the wire* — a repeated query answers from the
   consistent-hash sharded plan cache (``cache_hit=True``) without
   re-running the DP.
3. *Per-tenant quotas* — a tenant that drains its token bucket gets a
   structured ``429 quota_exceeded`` with a ``Retry-After`` hint while
   other tenants keep planning.
4. *k-best degraded serving* — with ``k_best=2`` the service retains
   the two cheapest join trees per fingerprint, so an expired-deadline
   request whose (TTL-expired) entry still sits in the stale tier
   serves the cached **rank-2** plan (``plan_rank=2``) instead of
   recomputing a greedy fallback.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import random
import threading
import time

from repro.graph.generators import star_graph
from repro.io import graph_to_dict
from repro.server import PlanServer, ServerConfig
from repro.service import PlanService

_SQL = (
    "SELECT * FROM orders o (1500000), customer c (150000), "
    "lineitem l (6000000) "
    "WHERE o.custkey = c.custkey [1/150000] "
    "  AND l.orderkey = o.orderkey [1/1500000]"
)


def call(
    port: int, path: str, body: dict | None = None, tenant: str | None = None
) -> tuple[int, dict, dict[str, str]]:
    """One HTTP exchange; returns (status, parsed JSON, headers)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        headers = {"X-Tenant": tenant} if tenant else {}
        method = "POST" if body is not None else "GET"
        encoded = json.dumps(body).encode() if body is not None else None
        connection.request(method, path, body=encoded, headers=headers)
        response = connection.getresponse()
        payload = json.loads(response.read())
        lowered = {k.lower(): v for k, v in response.getheaders()}
        return response.status, payload, lowered
    finally:
        connection.close()


def main() -> None:
    graph = star_graph(9, rng=random.Random(7))
    body = {"graph": graph_to_dict(graph)}

    # A short TTL so the stale-tier / rank-2 demo trips quickly, and a
    # tiny per-tenant budget so the quota demo does too.
    service = PlanService(
        algorithm="dpccp", cache_shards=4, k_best=2,
        workers=2, ttl_seconds=0.5,
    )
    server = PlanServer(
        service, ServerConfig(port=0, tenant_rate=0.1, tenant_burst=4.0)
    )
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(10)
    port = server.port
    print(f"server up on 127.0.0.1:{port}")

    try:
        # 1. Plan a serialized graph, then repeat it: the second answer
        #    comes from the sharded cache.
        status, first, _ = call(port, "/plan", body, tenant="demo")
        status, again, _ = call(port, "/plan", body, tenant="demo")
        print()
        print(f"POST /plan        -> {status}, cost={first['cost']:,.0f}, "
              f"algorithm={first['algorithm']!r}")
        print(f"repeat            -> cache_hit={again['cache_hit']}, "
              f"same cost: {again['cost'] == first['cost']}")

        # 2. Plan from SQL text.
        status, from_sql, _ = call(
            port, "/plan_sql", {"sql": _SQL}, tenant="demo"
        )
        print(f"POST /plan_sql    -> {status}, cost={from_sql['cost']:,.0f}")

        # 3. Quotas: tenant "hammer" burns its burst of 4, then gets a
        #    429 with a Retry-After hint; tenant "patient" is isolated.
        for _ in range(4):
            call(port, "/plan", body, tenant="hammer")
        status, denied, headers = call(port, "/plan", body, tenant="hammer")
        print()
        print(f"tenant 'hammer'   -> {status} {denied['error']['code']}, "
              f"Retry-After={headers['retry-after']}s")
        status, _, _ = call(port, "/plan", body, tenant="patient")
        print(f"tenant 'patient'  -> {status} (isolated bucket)")

        # 4. k-best: wait out the TTL, then send an already-expired
        #    deadline. The live entry is gone, but its ranked plans are
        #    parked in the stale tier — the server answers with the
        #    DP-priced rank-2 tree instead of a greedy fallback.
        time.sleep(0.6)
        status, degraded, _ = call(
            port, "/plan", {**body, "deadline_seconds": 0.0}
        )
        print()
        print(f"expired deadline  -> algorithm={degraded['algorithm']!r}, "
              f"plan_rank={degraded['plan_rank']}, "
              f"degraded={degraded['degraded']}")

        # 5. The observability document: cache shards, admission, quotas.
        _, snapshot, _ = call(port, "/snapshot")
        tenants = snapshot["server"]["quotas"]["tenants"]
        print()
        print(f"GET /snapshot     -> {len(snapshot['cache']['shards'])} "
              f"cache shards, "
              f"admitted={snapshot['server']['admission']['admitted']}, "
              f"denied(hammer)={tenants['hammer']['denied']}")
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()
        service.close()


if __name__ == "__main__":
    main()
