#!/usr/bin/env python3
"""Reproduce the paper's §2 analysis: formulas vs. instrumented runs.

Prints, for each topology and a range of query sizes:

* the closed-form predictions for ``I_DPsize``, ``I_DPsub`` and the
  ``#ccp`` lower bound (paper §2.1-2.3),
* the counters measured by actually running the algorithms,
* and the implied "wasted work" ratio InnerCounter / #ccp — the quantity
  whose size motivated DPccp ("in almost all cases the tests performed
  by both algorithms in their innermost loop fail").

Run with::

    python examples/counter_analysis.py [max_n]
"""

from __future__ import annotations

import sys

from repro.analysis.formulas import (
    ccp_unordered,
    inner_counter_dpsize,
    inner_counter_dpsub,
)
from repro.analysis.validation import compare_counters


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    sizes = [n for n in (4, 6, 8, 10, 12, 14) if n <= max_n]

    for topology in ("chain", "cycle", "star", "clique"):
        print(f"== {topology} queries " + "=" * (40 - len(topology)))
        header = (
            f"{'n':>3} {'#ccp':>10} {'I_DPsub':>12} {'I_DPsize':>12} "
            f"{'DPsub waste':>12} {'DPsize waste':>13} {'verified':>9}"
        )
        print(header)
        for n in sizes:
            ccp = ccp_unordered(n, topology)
            dpsub = inner_counter_dpsub(n, topology)
            dpsize = inner_counter_dpsize(n, topology)
            # Only run the real algorithms where they are quick.
            verified = "-"
            if max(dpsub, dpsize) <= 200_000:
                verified = "yes" if compare_counters(topology, n).matches else "NO!"
            print(
                f"{n:>3} {ccp:>10,} {dpsub:>12,} {dpsize:>12,} "
                f"{dpsub / ccp:>11.1f}x {dpsize / ccp:>12.1f}x {verified:>9}"
            )
        print()

    print(
        "'waste' = InnerCounter / #ccp: how many innermost-loop tests the\n"
        "algorithm runs per useful csg-cmp-pair. DPccp's waste is 1.0 by\n"
        "construction — it enumerates exactly the csg-cmp-pairs."
    )


if __name__ == "__main__":
    main()
