#!/usr/bin/env python3
"""From query text to optimal plan: the SQL-ish frontend.

Shows the full user journey a library consumer takes: write the query
as text (tables with cardinalities, join predicates with
selectivities), parse it, optimize with several algorithms, compare,
and emit the winner as graphviz DOT for rendering.

Run with::

    python examples/sql_frontend.py
"""

from __future__ import annotations

from repro import optimize, parse_query, render_indented
from repro.plans.dot import plan_to_dot

QUERY = """
    SELECT c.name, sum(l.price)
    FROM region r (5),
         nation n (25),
         customer c (150000),
         orders o (1500000),
         lineitem l (6000000)
    WHERE n.regionkey = r.regionkey [1/5]
      AND c.nationkey = n.nationkey [1/25]
      AND o.custkey   = c.custkey   [1/150000]
      AND l.orderkey  = o.orderkey  [1/1500000]
"""


def main() -> None:
    graph, catalog = parse_query(QUERY)
    print(f"parsed {graph.n_relations} relations, {len(graph.edges)} joins\n")

    print(f"{'algorithm':<12} {'cost':>14} {'pairs':>8} {'time (ms)':>10}")
    print("-" * 48)
    best = None
    for name in ("dpccp", "dpsize", "dpsub", "topdown", "goo", "quickpick"):
        result = optimize(graph, catalog=catalog, algorithm=name)
        print(
            f"{result.algorithm:<12} {result.cost:>14,.0f} "
            f"{result.counters.inner_counter:>8,} "
            f"{result.elapsed_seconds * 1000:>10.2f}"
        )
        if best is None or result.cost < best.cost:
            best = result
    assert best is not None

    print("\noptimal plan:")
    print(render_indented(best.plan))

    print("\ngraphviz DOT (pipe into `dot -Tsvg` to render):")
    print(plan_to_dot(best.plan, title=f"cost {best.cost:,.0f}"))


if __name__ == "__main__":
    main()
