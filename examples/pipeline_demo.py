"""The end-to-end pipeline: SQL text in, executed physical plan out.

Walks one query through every stage —

    parse -> ANALYZE -> push filters down -> enumerate (DPccp)
          -> select operators (NLJ/HJ/SMJ) -> execute -> q-errors

— twice: once under the textbook independence assumption (the query's
own selectivity annotations) and once with statistics derived from the
actual rows (NDV, MCV lists, equi-depth histograms). The workload is
Zipf-skewed, so the two estimators genuinely disagree, and executing
the plans shows who was right.

Run:  python examples/pipeline_demo.py
"""

from repro.pipeline import run_pipeline, tpch_workload
from repro.plans import render_indented
from repro.service import PlanService

SQL = """
SELECT * FROM customer (500), orders (3000), lineitem (10000)
WHERE orders.custkey = customer.custkey [1/500]
  AND lineitem.okey = orders.okey [1/3000]
  AND customer.mktsegment = 0
"""


def show(result) -> None:
    print(f"  estimator : {result.estimator}")
    print(f"  algorithm : {result.optimization.algorithm}")
    print(f"  plan cost : {result.optimization.cost:g}")
    for line in render_indented(result.physical_plan).splitlines():
        print(f"    {line}")
    report = result.report
    for obs in report.observations:
        print(
            f"    {obs.operator:<16} est {obs.estimated:>10.1f}"
            f"  actual {obs.actual:>8d}  q-error {obs.q_error:.2f}"
        )
    print(
        f"  result rows {report.result_rows}, median q-error "
        f"{report.median_q_error:.2f}, max {report.max_q_error:.2f}\n"
    )


def main() -> None:
    workload = tpch_workload(scale=0.5, seed=7)

    print("=== one query, two estimation strategies ===\n")
    for estimator in ("independence", "statistics"):
        result = run_pipeline(
            SQL, tables=workload.tables, estimator=estimator
        )
        show(result)

    print("=== the same front door on the caching plan service ===\n")
    with PlanService() as service:
        first = service.plan_sql(SQL)
        again = service.plan_sql(SQL)
        refined = service.plan_sql(
            SQL, tables=workload.tables, estimator="statistics"
        )
    print(f"  independence  cost {first.cost:>12g}  cache_hit={first.cache_hit}")
    print(f"  repeat        cost {again.cost:>12g}  cache_hit={again.cache_hit}")
    print(f"  statistics    cost {refined.cost:>12g}  cache_hit={refined.cache_hit}")
    print(
        "\n  (statistics fold into the prepared instance, so the two"
        "\n   strategies never share a cache entry)"
    )


if __name__ == "__main__":
    main()
