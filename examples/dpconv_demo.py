#!/usr/bin/env python3
"""DPconv in miniature: the subset-convolution sweep vs classic DPsub.

DPconv (arxiv 2409.08013, post-paper) exploits that under C_out the
cardinality of a join over a relation set does not depend on *how* the
set is split, so the DP decouples into a value-only min-plus sweep over
the 2^n lattice plus an O(n) plan reconstruction — the cost model is
invoked exactly n - 1 times instead of once per candidate pair. This
demo plans the same clique with DPsub and with both DPconv backends,
checks the costs agree, and prints where the work went.

Run with::

    python examples/dpconv_demo.py [n]
"""

from __future__ import annotations

import math
import sys

from repro import DPsub
from repro.bench.timer import measure_seconds
from repro.core.dpconv import DPconv, _numpy_module
from repro.graph.generators import clique_graph
from repro.plans.visitors import validate_plan


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    graph = clique_graph(n)

    contenders = [("DPsub", DPsub()), ("DPconv[python]", DPconv(backend="python"))]
    if _numpy_module() is not None:
        contenders.append(
            ("DPconv[numpy]", DPconv(backend="numpy", vector_min_relations=2))
        )
    else:
        print("(numpy not available — showing the stdlib sweep only)\n")

    print(f"clique, n = {n}\n")
    header = (
        f"{'engine':<16} {'time (ms)':>10} {'priced joins':>13} "
        f"{'inner loop':>11}"
    )
    print(header)
    print("-" * len(header))

    results = {}
    for label, engine in contenders:
        seconds = measure_seconds(
            lambda engine=engine: engine.optimize(graph), min_total_seconds=0.1
        )
        result = engine.optimize(graph)
        validate_plan(result.plan, graph)
        results[label] = result
        print(
            f"{label:<16} {seconds * 1000:>10.2f} "
            f"{result.counters.create_join_tree_calls:>13,} "
            f"{result.counters.inner_counter:>11,}"
        )

    baseline = results["DPsub"]
    for label, result in results.items():
        assert math.isclose(result.cost, baseline.cost, rel_tol=1e-9), label
    print(f"\nall engines agree: optimal C_out = {baseline.cost:,.0f}")

    convolved = results["DPconv[python]"]
    print(
        f"lattice passes: {convolved.counters.extra['lattice_passes']} "
        f"(= n - 1); convolution pairs visited: "
        f"{convolved.counters.extra['convolution_pairs']:,}"
    )
    print(
        "DPsub prices a join candidate per inner-loop step; DPconv visits\n"
        "the same split lattice as pure float min-plus work and prices\n"
        f"only the {n - 1} joins of the winning tree afterwards."
    )


if __name__ == "__main__":
    main()
