#!/usr/bin/env python3
"""Beyond the paper: complex predicates need hypergraphs (DPhyp).

The reproduced paper handles binary join predicates — edges between
two relations. Real queries also contain predicates referencing three
or more relations, e.g.::

    SELECT ... FROM orders o, currency c, rates r
    WHERE o.amount * r.rate = c.threshold AND ...

Such a predicate is a *hyperedge* between relation sets, and it
constrains reordering: the join using it can only run once all
relations of one side are assembled. DPhyp ("Dynamic Programming
Strikes Back", the successor paper) extends DPccp's csg-cmp-pair
enumeration to hypergraphs; this example shows it at work.

Run with::

    python examples/hypergraph_predicates.py
"""

from __future__ import annotations

from repro import bitset
from repro.catalog.catalog import Catalog
from repro.hyper import DPhyp, HyperCoutModel, Hyperedge, Hypergraph
from repro.plans.visitors import render_indented


def main() -> None:
    # Relations: 0=orders  1=lineitem  2=rates  3=currency  4=region
    names = ["orders", "lineitem", "rates", "currency", "region"]
    catalog = Catalog.from_cardinalities(
        [1_500_000, 6_000_000, 500, 30, 5], names=names
    )
    hypergraph = Hypergraph(
        5,
        [
            # ordinary binary joins
            Hyperedge(bitset.bit(0), bitset.bit(1), 1 / 1_500_000,
                      "lineitem.okey = orders.okey"),
            Hyperedge(bitset.bit(2), bitset.bit(3), 1 / 30,
                      "rates.cur = currency.cur"),
            Hyperedge(bitset.bit(3), bitset.bit(4), 1 / 5,
                      "currency.region = region.id"),
            Hyperedge(bitset.bit(0), bitset.bit(2), 1 / 500,
                      "orders.cur = rates.cur"),
            # the complex predicate: references orders+rates vs currency
            Hyperedge(bitset.set_of([0, 2]), bitset.bit(3), 0.001,
                      "orders.amount * rates.rate = currency.threshold"),
        ],
    )

    print("query hypergraph:", hypergraph)
    for edge in hypergraph.edges:
        kind = "simple " if edge.is_simple else "COMPLEX"
        print(f"  [{kind}] {edge.predicate}")
    print()

    result = DPhyp().optimize(
        hypergraph, cost_model=HyperCoutModel(hypergraph, catalog)
    )
    print("optimal plan:")
    print(render_indented(result.plan))
    print()
    print(f"cost                    : {result.cost:,.0f}")
    print(f"csg-cmp-pairs evaluated : {result.counters.inner_counter}")
    print(
        "\nThe complex predicate's selectivity enters the estimates as\n"
        "soon as orders, rates and currency are all in one intermediate;\n"
        "DPhyp's enumeration guarantees that any join *relying* on a\n"
        "hyperedge for connectivity has one full side assembled first."
    )


if __name__ == "__main__":
    main()
