#!/usr/bin/env python3
"""Data-warehouse star query: why DPccp is "the algorithm of choice".

The paper's §4 closes with: "since star queries are of high practical
importance in data warehouses and clique queries do not have any
practical value, DPccp is the algorithm of choice."

This example builds a star-schema query — one fact table joined to k
dimension tables — and shows two things:

1. **Plan quality**: the DP optimum versus the greedy (GOO) and
   left-deep (IKKBZ) baselines on the same statistics.
2. **Enumeration effort**: the InnerCounter of DPsize, DPsub and DPccp
   on the same query — the paper's Figure 10 story in numbers: DPccp
   touches exactly the (k)·2^{k-1} /2 csg-cmp-pairs while DPsize burns
   through ~4^k candidate pairs.

Run with::

    python examples/star_schema.py [n_dimensions]
"""

from __future__ import annotations

import sys

from repro import (
    DPccp,
    DPsize,
    DPsub,
    GreedyOperatorOrdering,
    IKKBZ,
    QueryGraphBuilder,
    render_inline,
)


def build_warehouse(n_dimensions: int):
    """Fact table + filtered dimensions of sharply varying sizes.

    Dimension k has 10 * 4^k rows. Each join is a foreign key from the
    fact table *with a local filter on the dimension* (e.g. ``d_year =
    1997``), so its effective selectivity is ``filter_k / |dim_k|`` and
    each join shrinks the fact-side intermediate by ``filter_k``. The
    filters differ per dimension — that is exactly what makes join
    *order* matter in a warehouse: apply the most selective dimensions
    first.
    """
    builder = QueryGraphBuilder().relation("fact", cardinality=10_000_000)
    filters = [0.05, 0.8, 0.2, 0.6, 0.1, 0.9, 0.35, 0.5, 0.25, 0.7]
    for k in range(n_dimensions):
        name = f"dim{k}"
        cardinality = 10 * 4**k
        builder.relation(name, cardinality=cardinality)
        builder.join(
            "fact",
            name,
            selectivity=filters[k % len(filters)] / cardinality,
            predicate=f"fact.fk{k} = {name}.pk AND filter_{k}",
        )
    return builder.build()


def main() -> None:
    n_dimensions = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    graph, catalog = build_warehouse(n_dimensions)
    print(
        f"star query: fact(10M rows) ⨝ {n_dimensions} dimensions "
        f"(10 .. {10 * 4 ** (n_dimensions - 1):,} rows)\n"
    )

    print("-- plan quality ------------------------------------------------")
    optimal = DPccp().optimize(graph, catalog=catalog)
    greedy = GreedyOperatorOrdering().optimize(graph, catalog=catalog)
    left_deep = IKKBZ().optimize(graph, catalog=catalog)
    print(f"DPccp (optimal bushy) : cost {optimal.cost:,.0f}")
    print(f"IKKBZ (optimal left-deep): cost {left_deep.cost:,.0f} "
          f"({left_deep.cost / optimal.cost:.3f}x optimal)")
    print(f"GOO (greedy)          : cost {greedy.cost:,.0f} "
          f"({greedy.cost / optimal.cost:.3f}x optimal)")
    print(f"\noptimal plan: {render_inline(optimal.plan)}\n")

    print("-- enumeration effort (the paper's Figure 10 story) ------------")
    header = f"{'algorithm':<10} {'InnerCounter':>14} {'time (ms)':>10}"
    print(header)
    print("-" * len(header))
    for algorithm in (DPsize(), DPsub(), DPccp()):
        result = algorithm.optimize(graph, catalog=catalog)
        print(
            f"{result.algorithm:<10} {result.counters.inner_counter:>14,} "
            f"{result.elapsed_seconds * 1000:>10.2f}"
        )
    print(
        "\nDPccp's InnerCounter is exactly the csg-cmp-pair count — the\n"
        "provable lower bound for any dynamic programming join enumerator."
    )


if __name__ == "__main__":
    main()
