#!/usr/bin/env python3
"""Does optimizing C_out actually help? Execute plans and count rows.

The paper optimizes an estimated cost. This example closes the loop:

1. generate synthetic tables whose join attributes realize the
   catalog's selectivities,
2. optimize the query with DPccp (optimal) and take a deliberately bad
   cross-product-free plan for contrast,
3. *execute* both with the hash-join interpreter and compare the
   estimated intermediate sizes against the actual row counts.

Run with::

    python examples/execution_validation.py
"""

from __future__ import annotations

from repro import DPccp
from repro.catalog.catalog import Catalog
from repro.cost.cout import CoutModel
from repro.exec import execute_plan, generate_tables
from repro.graph.querygraph import QueryGraph
from repro.plans.visitors import render_inline


def main() -> None:
    # A skewed chain: the middle join is hyper-selective, the outer
    # joins are not — starting at the ends is a costly mistake.
    graph = QueryGraph(
        4, [(0, 1, 0.01), (1, 2, 0.0001), (2, 3, 0.01)]
    )
    catalog = Catalog.from_cardinalities([2000, 400, 400, 2000])
    tables = generate_tables(graph, catalog, rng=42)
    model = CoutModel(graph, catalog)

    optimal = DPccp().optimize(graph, cost_model=CoutModel(graph, catalog)).plan
    # A poor but legal plan: work outside-in, saving the selective
    # middle join for last.
    poor = model.join(
        model.join(model.leaf(0), model.leaf(1)),
        model.join(model.leaf(2), model.leaf(3)),
    )

    print(
        "query: R0(2000) -[0.01]- R1(400) -[0.0001]- R2(400) -[0.01]- "
        "R3(2000)\n"
    )
    for label, plan in (("optimal (DPccp)", optimal), ("poor order", poor)):
        report = execute_plan(plan, graph, tables)
        print(f"-- {label}: {render_inline(plan)}")
        print(f"{'join over':<22} {'estimated':>12} {'actual':>9} {'q-error':>8}")
        for observation in report.observations:
            print(
                f"{bin(observation.relations):<22} "
                f"{observation.estimated:>12,.1f} {observation.actual:>9,} "
                f"{observation.q_error:>8.2f}"
            )
        print(
            f"total intermediate rows: estimated "
            f"{report.total_intermediate_estimated:,.0f}, actual "
            f"{report.total_intermediate_actual:,}"
        )
        print(f"final result rows      : {report.result_rows:,}\n")

    print(
        "Both plans return the same result; the optimizer's plan moves\n"
        "far fewer real rows — the estimated C_out ordering holds on\n"
        "actual executions, which is the premise behind optimizing it."
    )


if __name__ == "__main__":
    main()
