#!/usr/bin/env python3
"""Service layer: plan caching, batch planning, deadlines, metrics.

Run with::

    PYTHONPATH=src python examples/service_demo.py

Drives a repeated star-schema workload through
:class:`repro.service.PlanService` and shows the three things the
service adds on top of the bare optimizers:

1. *Canonical plan caching* — isomorphic queries (same shape and
   statistics, permuted relation numbering) share one cache entry, so
   a warm cache answers most of a repetitive workload without running
   the DP again.
2. *Deadlines with graceful degradation* — a request that cannot be
   optimized exactly within its deadline returns a greedy (GOO) plan
   with ``degraded=True`` instead of failing, while the exact
   optimization finishes in the background and fills the cache.
3. *Metrics* — hit rates, request counters and latency percentiles,
   renderable as text or JSON.
"""

from __future__ import annotations

import random

from repro.catalog.synthetic import random_catalog
from repro.graph.generators import star_graph
from repro.service import PlanRequest, PlanService, render_snapshot


def build_workload(requests: int, unique: int, n: int = 8, seed: int = 7):
    """A pool of `unique` star queries, each resubmitted under a random
    relabeling — the way the same logical query reappears with a
    different relation numbering across parse trees."""
    pool = []
    for index in range(unique):
        rng = random.Random(seed + index)
        pool.append((star_graph(n, rng=rng), random_catalog(n, rng)))

    rng = random.Random(seed)
    workload = []
    for _ in range(requests):
        graph, catalog = pool[rng.randrange(unique)]
        permutation = list(range(n))
        rng.shuffle(permutation)
        workload.append(
            PlanRequest(
                graph=graph.relabelled(permutation),
                catalog=catalog.relabelled(permutation),
            )
        )
    return workload


def main() -> None:
    # 1. Warm-up and hit-rate: 100 requests over 10 distinct queries.
    with PlanService(algorithm="adaptive", cache_capacity=64) as service:
        responses = service.plan_batch(build_workload(requests=100, unique=10))
        stats = service.cache_stats()
        print(f"planned {len(responses)} requests")
        print(f"  distinct optimizations : {stats.misses}")
        print(f"  cache hit-rate         : {stats.hit_rate:.3f}")
        print(f"  best plan cost (first) : {responses[0].cost:,.0f}")

        # 2. Deadlines: a 13-relation query cannot finish in ~1 us, so
        #    the service degrades to GOO instead of blocking or failing.
        rng = random.Random(99)
        big_graph = star_graph(13, rng=rng)
        big_catalog = random_catalog(13, rng)
        degraded = service.plan(big_graph, big_catalog, deadline_seconds=1e-6)
        print()
        print(f"tight deadline -> algorithm={degraded.algorithm!r}, "
              f"degraded={degraded.degraded}")

        # The exact plan keeps cooking in the background; a patient
        # retry gets the cached exact answer.
        exact = service.plan(big_graph, big_catalog, deadline_seconds=30.0)
        print(f"patient retry  -> algorithm={exact.algorithm!r}, "
              f"cache_hit={exact.cache_hit}, cost={exact.cost:,.0f}")

        # 3. Metrics snapshot.
        print()
        print(render_snapshot(service.snapshot()))


if __name__ == "__main__":
    main()
