#!/usr/bin/env python3
"""Quickstart: optimize one join query with DPccp and read the plan.

Run with::

    python examples/quickstart.py

Builds a small normalized-schema query (5 relations in a chain of
foreign keys), optimizes it with the paper's DPccp algorithm, and
prints the optimal bushy join tree, its cost, and the instrumentation
counters the paper's analysis is about.
"""

from __future__ import annotations

from repro import DPccp, QueryGraphBuilder, render_indented


def main() -> None:
    # 1. Describe the query: relations with cardinalities, joins with
    #    selectivities. foreign_key() derives selectivity 1/|referenced|.
    graph, catalog = (
        QueryGraphBuilder()
        .relation("region", cardinality=5)
        .relation("nation", cardinality=25)
        .relation("customer", cardinality=150_000)
        .relation("orders", cardinality=1_500_000)
        .relation("lineitem", cardinality=6_000_000)
        .foreign_key("nation", "region")
        .foreign_key("customer", "nation")
        .foreign_key("orders", "customer")
        .foreign_key("lineitem", "orders")
        .build()
    )

    # 2. Optimize. DPccp enumerates exactly the csg-cmp-pairs of the
    #    query graph — the provably minimal work for any DP enumerator.
    result = DPccp().optimize(graph, catalog=catalog)

    # 3. Inspect the result.
    print("optimal join tree (C_out cost model):")
    print(render_indented(result.plan))
    print()
    print(f"plan cost                : {result.cost:,.0f}")
    print(f"csg-cmp-pairs considered : {result.counters.inner_counter}")
    print(f"plan table entries (#csg): {result.table_size}")
    print(f"optimization time        : {result.elapsed_seconds * 1000:.2f} ms")


if __name__ == "__main__":
    main()
