#!/usr/bin/env python3
"""Optimizing beyond exact-DP reach with IDP-1.

Exact DP — even DPccp — is exponential in the worst case: a 16-relation
clique has ~21 million csg-cmp-pairs; a 30-relation one ~10^14. The
paper's intro cites iterative dynamic programming (Kossmann & Stocker)
as the standard way out: run *bounded* DP (plans up to k relations),
commit the best k-relation block, contract, repeat.

This example optimizes a snowflake query of configurable size with
exact DPccp (when feasible), IDP-1 at several block sizes, and greedy
GOO, showing the quality/effort trade-off.

Run with::

    python examples/large_query_idp.py [n_dimensions] [depth]
"""

from __future__ import annotations

import sys

from repro import DPccp, GreedyOperatorOrdering
from repro.catalog.schemas import snowflake_query
from repro.core.idp import IterativeDP


def main() -> None:
    n_dimensions = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    depth = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    graph, catalog = snowflake_query(n_dimensions, depth=depth, rng=11)
    n = graph.n_relations
    print(
        f"snowflake query: fact + {n_dimensions} dimension chains of "
        f"depth {depth} = {n} relations\n"
    )

    contenders = [
        ("GOO (greedy)", GreedyOperatorOrdering()),
        ("IDP-1, k=3", IterativeDP(k=3)),
        ("IDP-1, k=5", IterativeDP(k=5)),
        ("IDP-1, k=8", IterativeDP(k=8)),
    ]
    if n <= 20:
        contenders.append(("DPccp (exact)", DPccp()))

    results = []
    for label, algorithm in contenders:
        result = algorithm.optimize(graph, catalog=catalog)
        results.append((label, result))

    best_cost = min(result.cost for _label, result in results)
    header = (
        f"{'algorithm':<16} {'cost':>16} {'vs best':>9} "
        f"{'pairs evaluated':>16} {'time (ms)':>10}"
    )
    print(header)
    print("-" * len(header))
    for label, result in results:
        print(
            f"{label:<16} {result.cost:>16,.0f} "
            f"{result.cost / best_cost:>8.3f}x "
            f"{result.counters.inner_counter:>16,} "
            f"{result.elapsed_seconds * 1000:>10.1f}"
        )

    print(
        "\nIDP bounds enumeration work for any fixed k; plan quality is\n"
        "NOT monotone in k — committing the cheapest k-block can lock in\n"
        "a poor global choice (Kossmann & Stocker observe the same for\n"
        "the standard-best-plan policy and propose richer block-selection\n"
        "criteria). At k >= n it coincides with exact DP."
    )


if __name__ == "__main__":
    main()
