#!/usr/bin/env python3
"""The paper's experiment in miniature: all three algorithms, four graphs.

Reproduces the qualitative content of Figures 8-11 in one run: for each
of chain, cycle, star and clique at a configurable size, time DPsize,
DPsub and DPccp and print the time relative to DPccp, next to the
InnerCounter that the paper's complexity analysis predicts.

Run with::

    python examples/algorithm_showdown.py [n]
"""

from __future__ import annotations

import sys

from repro import DPccp, DPsize, DPsub
from repro.analysis.formulas import ccp_unordered, inner_counter_dpsize, inner_counter_dpsub
from repro.bench.timer import measure_seconds
from repro.graph.generators import graph_for_topology


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    algorithms = [DPsize(), DPsub(), DPccp()]
    predictors = {
        "DPsize": inner_counter_dpsize,
        "DPsub": inner_counter_dpsub,
        "DPccp": ccp_unordered,
    }

    print(f"query size n = {n}; times relative to DPccp (lower is better)\n")
    header = (
        f"{'graph':<8} {'algorithm':<8} {'InnerCounter':>13} "
        f"{'time (ms)':>10} {'rel. to DPccp':>14}"
    )
    print(header)
    print("-" * len(header))
    for topology in ("chain", "cycle", "star", "clique"):
        graph = graph_for_topology(topology, n)
        times = {}
        for algorithm in algorithms:
            times[algorithm.name] = measure_seconds(
                lambda algorithm=algorithm: algorithm.optimize(graph),
                min_total_seconds=0.1,
            )
        baseline = times["DPccp"]
        for algorithm in algorithms:
            name = algorithm.name
            predicted = predictors[name](n, topology)
            print(
                f"{topology:<8} {name:<8} {predicted:>13,} "
                f"{times[name] * 1000:>10.2f} {times[name] / baseline:>14.2f}"
            )
        print()

    print(
        "Expected shape (paper §4): DPsub loses on chain/cycle, DPsize\n"
        "loses on star/clique, DPccp is at or near the front everywhere."
    )


if __name__ == "__main__":
    main()
