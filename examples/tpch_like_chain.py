#!/usr/bin/env python3
"""A TPC-H-flavored chain query under two cost models.

Normalized schemas produce *chain* query graphs (foreign-key paths).
This example optimizes the region-nation-supplier-partsupp-part chain
twice — under the C_out model and under the disk model with physical
operator selection — and shows that:

* the enumeration effort (InnerCounter) is identical: the paper's
  algorithms are cost-model agnostic;
* the chosen plans can differ, and the disk model annotates physical
  operators (hash / nested-loop / sort-merge).

Run with::

    python examples/tpch_like_chain.py
"""

from __future__ import annotations

from repro import (
    CoutModel,
    DiskCostModel,
    DPccp,
    QueryGraphBuilder,
    render_indented,
)
from repro.plans.metrics import classify_plan_shape


def build_chain():
    return (
        QueryGraphBuilder()
        .relation("region", cardinality=5)
        .relation("nation", cardinality=25)
        .relation("supplier", cardinality=10_000)
        .relation("partsupp", cardinality=800_000)
        .relation("part", cardinality=200_000)
        .foreign_key("nation", "region")
        .foreign_key("supplier", "nation")
        .foreign_key("partsupp", "supplier")
        .foreign_key("partsupp", "part")
        .build()
    )


def main() -> None:
    graph, catalog = build_chain()
    algorithm = DPccp()

    print("query graph: region - nation - supplier - partsupp - part\n")

    for model in (CoutModel(graph, catalog), DiskCostModel(graph, catalog)):
        result = algorithm.optimize(graph, cost_model=model)
        print(f"-- cost model: {model.name} " + "-" * (48 - len(model.name)))
        print(render_indented(result.plan))
        print(f"cost                : {result.cost:,.0f}")
        print(f"plan shape          : {classify_plan_shape(result.plan).value}")
        print(f"csg-cmp-pairs       : {result.counters.inner_counter}")
        print()

    print(
        "Note: both runs enumerate the same csg-cmp-pairs — enumeration\n"
        "depends only on the query graph, never on the cost arithmetic."
    )


if __name__ == "__main__":
    main()
