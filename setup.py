"""Legacy setup shim.

The environment this repository targets may lack the ``wheel`` package
(and network access to fetch it), which breaks PEP 660 editable
installs. ``python setup.py develop`` still works everywhere; all real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
